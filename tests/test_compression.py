"""Tests for the upload-compression extension (QSGD, top-k, integration)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compression.base import Compressor, IdentityCompressor
from repro.compression.quantization import QSGDQuantizer
from repro.compression.sparsification import TopKSparsifier
from repro.core.hierminimax import HierMinimax
from repro.nn.models import make_model_factory

from tests.conftest import make_blob_fed

vectors = hnp.arrays(dtype=np.float64, shape=st.integers(1, 40),
                     elements=st.floats(-5, 5, allow_nan=False))


class TestIdentity:
    def test_protocol_conformance(self):
        assert isinstance(IdentityCompressor(), Compressor)
        assert isinstance(QSGDQuantizer(), Compressor)
        assert isinstance(TopKSparsifier(), Compressor)

    def test_identity_passthrough(self):
        c = IdentityCompressor()
        v = np.array([1.0, -2.0])
        assert c.compress(v, np.random.default_rng(0)) is v
        assert c.payload_floats(100) == 100.0


class TestQSGD:
    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            QSGDQuantizer(levels=0)

    def test_zero_vector_preserved(self):
        q = QSGDQuantizer(4)
        out = q.compress(np.zeros(5), np.random.default_rng(0))
        np.testing.assert_array_equal(out, np.zeros(5))

    def test_unbiasedness(self):
        """E[q(v)] = v — the property quantized-FL convergence rests on."""
        q = QSGDQuantizer(levels=2)
        v = np.array([0.3, -1.2, 0.05, 2.0])
        gen = np.random.default_rng(0)
        mean = np.mean([q.compress(v, gen) for _ in range(20000)], axis=0)
        np.testing.assert_allclose(mean, v, atol=0.02)

    def test_output_on_quantization_grid(self):
        q = QSGDQuantizer(levels=4)
        v = np.random.default_rng(1).normal(size=10)
        out = q.compress(v, np.random.default_rng(2))
        norm = np.linalg.norm(v)
        grid_units = out * 4 / norm
        np.testing.assert_allclose(grid_units, np.round(grid_units), atol=1e-9)

    def test_payload_shrinks_with_fewer_levels(self):
        assert QSGDQuantizer(1).payload_floats(1000) < \
            QSGDQuantizer(128).payload_floats(1000)

    def test_payload_below_full_precision(self):
        assert QSGDQuantizer(16).payload_floats(10000) < 10000

    @settings(max_examples=60, deadline=None)
    @given(v=vectors, levels=st.integers(1, 32))
    def test_property_error_bounded(self, v, levels):
        """QSGD error per coordinate is at most ||v||/s."""
        q = QSGDQuantizer(levels)
        out = q.compress(v, np.random.default_rng(0))
        norm = np.linalg.norm(v)
        assert np.all(np.abs(out - v) <= norm / levels + 1e-9)


class TestTopK:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            TopKSparsifier(0.0)

    def test_keeps_largest(self):
        t = TopKSparsifier(0.5, error_feedback=False)
        v = np.array([0.1, -5.0, 0.2, 3.0])
        out = t.compress(v, np.random.default_rng(0))
        np.testing.assert_array_equal(out, [0.0, -5.0, 0.0, 3.0])

    def test_full_fraction_is_identity(self):
        t = TopKSparsifier(1.0, error_feedback=False)
        v = np.array([1.0, 2.0])
        np.testing.assert_array_equal(t.compress(v, np.random.default_rng(0)), v)

    def test_at_least_one_kept(self):
        t = TopKSparsifier(0.001, error_feedback=False)
        out = t.compress(np.array([1.0, 2.0, 3.0]), np.random.default_rng(0))
        assert np.count_nonzero(out) == 1

    def test_error_feedback_accumulates(self):
        """Residuals must be replayed: two identical updates through a k=1
        sparsifier deliver more mass than one."""
        t = TopKSparsifier(0.3, error_feedback=True)  # keeps 1 of 3 coords
        v = np.array([3.0, 2.0, 1.0])
        gen = np.random.default_rng(0)
        first = t.compress_from(7, v, gen)
        second = t.compress_from(7, v, gen)
        np.testing.assert_array_equal(first, [3.0, 0.0, 0.0])
        # second call sees v + residual [0,2,1] -> [3,4,2]: index 1 wins now
        np.testing.assert_array_equal(second, [0.0, 4.0, 0.0])

    def test_error_feedback_per_sender(self):
        t = TopKSparsifier(0.3, error_feedback=True)
        gen = np.random.default_rng(0)
        v = np.array([3.0, 2.0, 1.0])
        t.compress_from(1, v, gen)
        out = t.compress_from(2, v, gen)  # different sender: fresh residual
        np.testing.assert_array_equal(out, [3.0, 0.0, 0.0])

    def test_reset(self):
        t = TopKSparsifier(0.3, error_feedback=True)
        gen = np.random.default_rng(0)
        t.compress_from(1, np.array([3.0, 2.0, 1.0]), gen)
        t.reset()
        out = t.compress_from(1, np.array([3.0, 2.0, 1.0]), gen)
        np.testing.assert_array_equal(out, [3.0, 0.0, 0.0])

    def test_payload(self):
        assert TopKSparsifier(0.1).payload_floats(1000) == pytest.approx(150.0)


class TestAlgorithmIntegration:
    def test_quantized_hierminimax_learns(self, blob_fed, blob_factory):
        algo = HierMinimax(blob_fed, blob_factory, eta_w=0.2, eta_p=0.01,
                           batch_size=4, seed=0,
                           compressor=QSGDQuantizer(levels=64))
        res = algo.run(rounds=60, eval_every=60)
        assert res.history.final().record.average_accuracy > 0.85

    def test_quantization_reduces_uplink_floats(self, blob_fed, blob_factory):
        plain = HierMinimax(blob_fed, blob_factory, eta_w=0.1, eta_p=0.01,
                            batch_size=4, seed=0)
        quant = HierMinimax(blob_fed, blob_factory, eta_w=0.1, eta_p=0.01,
                            batch_size=4, seed=0,
                            compressor=QSGDQuantizer(levels=16))
        plain.run(rounds=5, eval_every=5)
        quant.run(rounds=5, eval_every=5)
        for link in ("client_edge:up", "edge_cloud:up"):
            before = plain.tracker.snapshot().floats[link]
            after = quant.tracker.snapshot().floats[link]
            # 16 levels -> 6 bits per coordinate vs 64: ~10x uplink reduction.
            assert after < 0.25 * before
        # Downlinks are untouched (still full precision).
        assert quant.tracker.snapshot().floats["client_edge:down"] == \
            plain.tracker.snapshot().floats["client_edge:down"]

    def test_topk_hierminimax_learns(self, blob_fed, blob_factory):
        algo = HierMinimax(blob_fed, blob_factory, eta_w=0.2, eta_p=0.01,
                           batch_size=4, seed=0,
                           compressor=TopKSparsifier(0.25))
        res = algo.run(rounds=80, eval_every=80)
        assert res.history.final().record.average_accuracy > 0.8

    def test_registry_accepts_compressor(self, blob_fed, blob_factory):
        from repro.baselines.registry import make_algorithm

        algo = make_algorithm("hierminimax", blob_fed, blob_factory,
                              compressor=QSGDQuantizer(8))
        assert isinstance(algo.compressor, QSGDQuantizer)

    def test_deterministic_with_compression(self, blob_fed, blob_factory):
        runs = []
        for _ in range(2):
            algo = HierMinimax(blob_fed, blob_factory, eta_w=0.1, eta_p=0.01,
                               batch_size=4, seed=5,
                               compressor=QSGDQuantizer(16))
            runs.append(algo.run(rounds=3, eval_every=3).final_params)
        np.testing.assert_array_equal(runs[0], runs[1])
