"""Tests for repro.nn.optim (projected SGD, Eq. (4))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import logistic_regression
from repro.nn.optim import SGD, sgd_step
from repro.ops.projections import project_l2_ball


def _easy_problem(seed=0, n=40, d=4):
    gen = np.random.default_rng(seed)
    X0 = gen.normal(size=(n // 2, d)) + 3.0
    X1 = gen.normal(size=(n // 2, d)) - 3.0
    X = np.concatenate([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestSgdStep:
    def test_returns_pre_step_loss(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        loss_before = net.loss(X, y)
        reported = sgd_step(net, X, y, lr=0.1)
        assert reported == pytest.approx(loss_before)

    def test_full_batch_descent(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        losses = [sgd_step(net, X, y, lr=0.1) for _ in range(30)]
        assert losses[-1] < losses[0]
        assert net.accuracy(X, y) == 1.0

    def test_matches_manual_update(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=1)
        w0 = net.get_params()
        _, g = net.loss_and_gradient(X, y)
        net.set_params(w0)
        sgd_step(net, X, y, lr=0.25)
        np.testing.assert_allclose(net.get_params(), w0 - 0.25 * g)

    def test_projection_applied(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        net.params_view()[:] = 10.0  # far outside the ball
        sgd_step(net, X, y, lr=0.01,
                 projection=lambda w: project_l2_ball(w, 1.0))
        assert np.linalg.norm(net.get_params()) <= 1.0 + 1e-9

    def test_bad_lr_raises(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        with pytest.raises(ValueError):
            sgd_step(net, X, y, lr=0.0)


class TestSGDClass:
    def test_plain_matches_sgd_step(self):
        X, y = _easy_problem()
        a = logistic_regression(4, 2, rng=3)
        b = logistic_regression(4, 2, rng=3)
        opt = SGD(a, lr=0.2)
        opt.step(X, y)
        sgd_step(b, X, y, lr=0.2)
        np.testing.assert_array_equal(a.get_params(), b.get_params())

    def test_step_count(self):
        X, y = _easy_problem()
        opt = SGD(logistic_regression(4, 2, rng=0), lr=0.1)
        for _ in range(3):
            opt.step(X, y)
        assert opt.steps_taken == 3

    def test_lr_override(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        w0 = net.get_params()
        _, g = net.loss_and_gradient(X, y)
        net.set_params(w0)
        SGD(net, lr=1.0).step(X, y, lr=0.5)
        np.testing.assert_allclose(net.get_params(), w0 - 0.5 * g)

    def test_momentum_accelerates_on_quadratic_like(self):
        X, y = _easy_problem()
        plain = SGD(logistic_regression(4, 2, rng=4), lr=0.05)
        heavy = SGD(logistic_regression(4, 2, rng=4), lr=0.05, momentum=0.9)
        for _ in range(25):
            plain.step(X, y)
            heavy.step(X, y)
        assert heavy.model.loss(X, y) < plain.model.loss(X, y)

    def test_momentum_reset(self):
        X, y = _easy_problem()
        opt = SGD(logistic_regression(4, 2, rng=0), lr=0.1, momentum=0.9)
        opt.step(X, y)
        opt.reset_state()
        assert np.all(opt._velocity == 0.0)

    def test_invalid_hyperparams(self):
        net = logistic_regression(4, 2, rng=0)
        with pytest.raises(ValueError):
            SGD(net, lr=-0.1)
        with pytest.raises(ValueError):
            SGD(net, lr=0.1, momentum=1.0)
        X, y = _easy_problem()
        with pytest.raises(ValueError):
            SGD(net, lr=0.1).step(X, y, lr=0.0)

    def test_projection_enforced_every_step(self):
        X, y = _easy_problem()
        net = logistic_regression(4, 2, rng=0)
        opt = SGD(net, lr=0.5, projection=lambda w: project_l2_ball(w, 0.5))
        for _ in range(5):
            opt.step(X, y)
            assert np.linalg.norm(net.get_params()) <= 0.5 + 1e-9
