"""Gradient verification: every hand-derived backward pass vs finite differences.

These tests certify the substrate the whole reproduction rests on — if a backward
pass were wrong, every experiment downstream would be silently corrupted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import gradient_check, max_relative_error, numerical_gradient
from repro.nn.layers import Linear, Tanh
from repro.nn.losses import MeanSquaredError
from repro.nn.models import logistic_regression, mlp
from repro.nn.network import NeuralNetwork


def _data(n, d, classes, seed=0):
    gen = np.random.default_rng(seed)
    return gen.normal(size=(n, d)), gen.integers(0, classes, size=n)


class TestGradientCheck:
    def test_logistic_regression(self):
        X, y = _data(6, 5, 3)
        err = gradient_check(logistic_regression(5, 3, rng=1), X, y, tol=1e-5)
        assert err < 1e-5

    def test_logistic_with_l2(self):
        X, y = _data(6, 5, 3)
        err = gradient_check(logistic_regression(5, 3, rng=1, l2=0.05), X, y, tol=1e-5)
        assert err < 1e-5

    def test_relu_mlp(self):
        X, y = _data(8, 4, 3, seed=2)
        err = gradient_check(mlp(4, (6, 5), 3, rng=2), X, y, tol=1e-4)
        assert err < 1e-4

    def test_deep_relu_mlp(self):
        X, y = _data(5, 3, 2, seed=3)
        err = gradient_check(mlp(3, (4, 4, 4), 2, rng=3), X, y, tol=1e-4)
        assert err < 1e-4

    def test_tanh_network(self):
        X, y = _data(6, 4, 3, seed=4)
        net = NeuralNetwork([Linear(4, 5), Tanh(), Linear(5, 3)], input_dim=4, rng=4)
        err = gradient_check(net, X, y, tol=1e-5)
        assert err < 1e-5

    def test_mse_network(self):
        gen = np.random.default_rng(5)
        X = gen.normal(size=(4, 3))
        t = gen.normal(size=(4, 2))
        net = NeuralNetwork([Linear(3, 2)], input_dim=3, rng=5,
                            loss=MeanSquaredError())
        err = gradient_check(net, X, t, tol=1e-6)
        assert err < 1e-6

    def test_subset_probing(self):
        X, y = _data(5, 30, 4, seed=6)
        net = logistic_regression(30, 4, rng=6)
        err = gradient_check(net, X, y, num_probes=40, tol=1e-5,
                             rng=np.random.default_rng(0))
        assert err < 1e-5

    def test_batch_size_one(self):
        X, y = _data(1, 4, 3, seed=7)
        assert gradient_check(logistic_regression(4, 3, rng=7), X, y, tol=1e-5) < 1e-5

    def test_failure_detected(self):
        """A deliberately corrupted gradient must be caught."""
        X, y = _data(5, 4, 3, seed=8)
        net = logistic_regression(4, 3, rng=8)

        original = net.loss_and_gradient

        def corrupted(Xb, yb):
            loss, grad = original(Xb, yb)
            grad = grad + 0.5
            return loss, grad

        net.loss_and_gradient = corrupted  # type: ignore[method-assign]
        with pytest.raises(AssertionError):
            gradient_check(net, X, y, tol=1e-5)


class TestNumericalGradient:
    def test_restores_parameters(self):
        X, y = _data(3, 4, 2, seed=9)
        net = logistic_regression(4, 2, rng=9)
        before = net.get_params()
        numerical_gradient(net, X, y, indices=np.array([0, 1, 2]))
        np.testing.assert_array_equal(net.get_params(), before)

    def test_indices_limit_probes(self):
        X, y = _data(3, 4, 2, seed=9)
        net = logistic_regression(4, 2, rng=9)
        g = numerical_gradient(net, X, y, indices=np.array([1]))
        assert np.count_nonzero(g) <= 1


class TestMaxRelativeError:
    def test_zero_for_identical(self):
        v = np.array([1.0, -2.0])
        assert max_relative_error(v, v) == 0.0

    def test_scale_free(self):
        a = np.array([1000.0])
        b = np.array([1001.0])
        assert max_relative_error(a, b) == pytest.approx(1.0 / 1001.0)

    def test_floor_prevents_blowup(self):
        assert max_relative_error(np.array([0.0]), np.array([1e-12])) < 1e-3
