"""Deterministic chaos: seeded kill-points and crash-safe persistence.

Contracts under test (DESIGN.md §"Failure model & recovery matrix"):

* every injected failure's parameters are a pure function of
  ``(plan.seed, site, occurrence)`` — a chaos campaign replays exactly;
* checkpoint files are torn-write-safe (fsync + atomic rename, the previous
  generation rotated to ``.prev``) and checksummed — damage that still parses
  as JSON is caught by the CRC-32 envelope, never silently loaded;
* the recovery law: a bad current checkpoint falls back to the previous
  generation, and the resumed run is bit-identical to the uninterrupted one.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.chaos import (
    CHAOS_SITES,
    ChaosCrash,
    ChaosInjector,
    ChaosPlan,
    active,
    chaos,
    fire,
)
from repro.core.hierminimax import HierMinimax
from repro.faults.checkpoint import (
    CHECKSUM_KEY,
    CheckpointError,
    load_checkpoint_file,
    previous_checkpoint_path,
    save_checkpoint_file,
)
from repro.nn.models import make_model_factory

from .conftest import make_blob_fed


# ---------------------------------------------------------------------------
# Plans: purity, parsing, occurrence clocks
# ---------------------------------------------------------------------------
class TestChaosPlan:
    def test_params_are_pure_in_seed_site_occurrence(self):
        a, b = ChaosPlan(seed=7), ChaosPlan(seed=7)
        for site in CHAOS_SITES:
            for occ in (0, 1, 5):
                assert a.params(site, occ) == b.params(site, occ)
        assert (ChaosPlan(seed=7).params("torn_write", 0)
                != ChaosPlan(seed=8).params("torn_write", 0))
        assert (a.params("shard_corrupt", 0)
                != a.params("shard_corrupt", 1))

    def test_parse_round_trip_and_shorthand(self):
        plan = ChaosPlan.parse("worker_kill=1,torn_write=0|2,seed=3,"
                               "hang_s=0.5")
        assert plan.worker_kill == (1,)
        assert plan.torn_write == (0, 2)
        assert plan.seed == 3 and plan.hang_s == 0.5
        assert ChaosPlan(torn_write=2).torn_write == (2,)  # int shorthand
        assert ChaosPlan.parse(None).is_null
        assert ChaosPlan.parse("").is_null

    def test_parse_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            ChaosPlan.parse("no_such_site=1")
        with pytest.raises(ValueError):
            ChaosPlan.parse("worker_kill")
        with pytest.raises(ValueError):
            ChaosPlan(torn_write=(-1,))
        with pytest.raises(ValueError):
            ChaosPlan().params("no_such_site", 0)

    def test_injector_fires_only_planned_occurrences(self):
        injector = ChaosInjector(ChaosPlan(torn_write=(1,), seed=0))
        assert injector.decide("torn_write") is None      # occurrence 0
        decision = injector.decide("torn_write")          # occurrence 1
        assert decision is not None and decision["occurrence"] == 1
        assert 0.05 <= decision["frac"] <= 0.95
        assert injector.decide("torn_write") is None      # occurrence 2
        assert injector.fired_sites() == ["torn_write"]
        with pytest.raises(KeyError):
            injector.decide("no_such_site")


class TestHooks:
    def test_fire_without_injector_is_none(self):
        assert active() is None
        assert fire("torn_write") is None

    def test_chaos_context_installs_and_uninstalls(self):
        with chaos(ChaosPlan(crash_after_save=(0,))) as injector:
            assert active() is injector
            assert fire("crash_after_save") is not None
        assert active() is None
        # The context also accepts spec strings.
        with chaos("torn_write=0,seed=2") as injector:
            assert injector.plan.torn_write == (0,)


# ---------------------------------------------------------------------------
# Durable checkpoints: tearing, checksums, generation fallback
# ---------------------------------------------------------------------------
def _state(round_index: int) -> dict:
    return {"algorithm": "demo", "round": round_index,
            "w": np.arange(4, dtype=np.float64) * (round_index + 1)}


class TestDurableCheckpoint:
    def test_torn_write_preserves_previous_generation(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint_file(path, _state(1))
        with chaos(ChaosPlan(torn_write=(1,), seed=4)) as injector:
            save_checkpoint_file(path, _state(1))  # occurrence 0: clean
            with pytest.raises(ChaosCrash):
                save_checkpoint_file(path, _state(2))  # occurrence 1: torn
        assert injector.fired_sites() == ["torn_write"]
        # The torn temp file never reached the checkpoint name.
        assert load_checkpoint_file(path)["round"] == 1

    def test_checksum_catches_plausible_mutation(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint_file(path, _state(3))
        text = path.read_text()
        mutated = text.replace('"round": 3', '"round": 13')
        assert mutated != text
        path.write_text(mutated)  # still valid JSON, still checkpoint-shaped
        with pytest.raises(CheckpointError, match="crc32"):
            load_checkpoint_file(path)

    def test_non_utf8_damage_is_corruption_not_a_crash(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint_file(path, _state(3))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] = 0xBA  # invalid UTF-8 start byte
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint_file(path)

    def test_legacy_file_without_envelope_loads(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint_file(path, _state(5))
        raw = json.loads(path.read_text())
        raw.pop(CHECKSUM_KEY)
        path.write_text(json.dumps(raw))
        assert load_checkpoint_file(path)["round"] == 5

    def test_rotation_and_generation_fallback(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint_file(path, _state(1))
        save_checkpoint_file(path, _state(2))
        prev = previous_checkpoint_path(path)
        assert load_checkpoint_file(prev)["round"] == 1
        assert load_checkpoint_file(path)["round"] == 2


# ---------------------------------------------------------------------------
# End-to-end: interrupted training resumes bit-identically (serial scenarios;
# the full kill-point × backend sweep runs as `python -m repro chaos`)
# ---------------------------------------------------------------------------
class TestCrashRecovery:
    @pytest.fixture()
    def setup(self):
        fed = make_blob_fed(num_edges=3, clients_per_edge=2, seed=5)
        factory = make_model_factory("logistic", 5, 3)
        return fed, factory

    def _algo(self, setup):
        fed, factory = setup
        return HierMinimax(fed, factory, tau1=2, tau2=2, m_edges=2,
                           eta_w=0.05, eta_p=2e-3, batch_size=4, seed=3)

    def test_torn_checkpoint_resumes_bit_identically(self, setup, tmp_path):
        ref = self._algo(setup).run(rounds=6, eval_every=2)
        path = tmp_path / "run.ckpt.json"
        with chaos(ChaosPlan(torn_write=(1,), seed=0)):
            with pytest.raises(ChaosCrash):
                self._algo(setup).run(rounds=6, eval_every=2,
                                      checkpoint_path=path,
                                      checkpoint_every=2)
        resumed = self._algo(setup)
        done = resumed.load_checkpoint(path)
        assert done == 2  # the save at round 4 was the torn one
        result = resumed.run(rounds=6 - done, eval_every=2)
        np.testing.assert_array_equal(ref.final_params, result.final_params)
        np.testing.assert_array_equal(ref.final_weights,
                                      result.final_weights)
        assert ref.history.as_dict() == result.history.as_dict()

    def test_corrupted_checkpoint_falls_back_one_generation(self, setup,
                                                            tmp_path):
        ref = self._algo(setup).run(rounds=6, eval_every=2)
        path = tmp_path / "run.ckpt.json"
        with chaos(ChaosPlan(crash_after_save=(1,), seed=0)):
            with pytest.raises(ChaosCrash):
                self._algo(setup).run(rounds=6, eval_every=2,
                                      checkpoint_path=path,
                                      checkpoint_every=2)
        # Flip a digit inside the current generation: valid JSON, bad CRC.
        text = path.read_text()
        assert '"round": 4' in text
        path.write_text(text.replace('"round": 4', '"round": 5'))
        resumed = self._algo(setup)
        done = resumed.load_checkpoint(path)
        assert done == 2  # fell back to the .prev generation
        result = resumed.run(rounds=6 - done, eval_every=2)
        np.testing.assert_array_equal(ref.final_params, result.final_params)
        assert ref.history.as_dict() == result.history.as_dict()

    def test_unloadable_everything_raises_checkpoint_error(self, setup,
                                                           tmp_path):
        with pytest.raises(CheckpointError, match="no loadable checkpoint"):
            self._algo(setup).load_checkpoint(tmp_path / "absent.ckpt.json")
