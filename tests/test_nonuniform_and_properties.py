"""Non-uniform topologies and extra property-based coverage.

The paper notes its analysis "can be easily generalized to the case where
different edge servers have different numbers of clients"; these tests exercise
that case end to end, plus additional hypothesis properties on the data layer.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.data.batching import MinibatchSampler
from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset
from repro.data.partition import partition_similarity, split_evenly
from repro.nn.models import make_model_factory


def make_nonuniform_fed(counts=(1, 3, 2), seed=0) -> FederatedDataset:
    """Edge areas with different client counts over separable blobs."""
    gen = np.random.default_rng(seed)
    num_classes = len(counts)
    centers = 3.0 * gen.normal(size=(num_classes, 4))
    edges = []
    for e, n_clients in enumerate(counts):
        def mk(n):
            X = centers[e] + gen.normal(size=(n, 4))
            return Dataset(X, np.full(n, e, dtype=np.int64), num_classes)
        edges.append(EdgeAreaData([mk(10 + 2 * i) for i in range(n_clients)],
                                  mk(12), name=f"area{e}"))
    return FederatedDataset(edges, name="nonuniform")


class TestNonUniformTopology:
    @pytest.fixture()
    def fed(self):
        return make_nonuniform_fed()

    @pytest.fixture()
    def factory(self, fed):
        return make_model_factory("logistic", fed.input_dim, fed.num_classes)

    def test_layout(self, fed):
        assert fed.clients_per_edge() == [1, 3, 2]
        assert fed.num_clients == 6

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_algorithm_runs(self, fed, factory, name):
        algo = make_algorithm(name, fed, factory, batch_size=4, eta_w=0.1,
                              eta_p=0.02, tau1=2, tau2=2, m_edges=2, seed=0)
        res = algo.run(rounds=3, eval_every=3)
        assert len(res.history) >= 1
        assert np.all(np.isfinite(res.final_params))

    def test_hierminimax_learns_nonuniform(self, fed, factory):
        algo = make_algorithm("hierminimax", fed, factory, batch_size=4,
                              eta_w=0.2, eta_p=0.02, seed=0)
        res = algo.run(rounds=50, eval_every=50)
        assert res.history.final().record.average_accuracy > 0.9

    def test_hierfavg_data_weighting_nonuniform(self, fed, factory):
        """Data-weighted aggregation must differ from uniform on uneven areas."""
        a = make_algorithm("hierfavg", fed, factory, batch_size=4, eta_w=0.1,
                           weight_by_data=True, seed=0)
        b = make_algorithm("hierfavg", fed, factory, batch_size=4, eta_w=0.1,
                           weight_by_data=False, seed=0)
        a.run_round(0)
        b.run_round(0)
        assert not np.array_equal(a.w, b.w)

    def test_multilevel_with_irregular_tree(self, fed, factory):
        from repro.multilayer import HierarchyTree, MultiLevelHierMinimax

        tree = HierarchyTree([[[0, 1, 2]], [[0], [1, 2, 3], [4, 5]]])
        tree.validate_dataset(fed)
        algo = MultiLevelHierMinimax(fed, factory, tree=tree, taus=(2, 2),
                                     eta_w=0.1, eta_p=0.02, batch_size=4, seed=0)
        res = algo.run(rounds=5, eval_every=5)
        assert res.final_weights.shape == (3,)
        assert res.final_weights.sum() == pytest.approx(1.0)


class TestDataProperties:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(6, 60), parts=st.integers(1, 6), seed=st.integers(0, 50))
    def test_split_evenly_partition_property(self, n, parts, seed):
        """split_evenly is a true partition: sizes balanced, rows conserved."""
        if parts > n:
            return
        gen = np.random.default_rng(seed)
        ds = Dataset(np.arange(n, dtype=np.float64)[:, None],
                     np.zeros(n, dtype=np.int64), 1)
        shards = split_evenly(ds, parts, rng=gen)
        sizes = [len(s) for s in shards]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        all_rows = np.sort(np.concatenate([s.X[:, 0] for s in shards]))
        np.testing.assert_array_equal(all_rows, np.arange(n))

    @settings(max_examples=25, deadline=None)
    @given(batch=st.integers(1, 7), draws=st.integers(1, 30),
           seed=st.integers(0, 20))
    def test_minibatch_usage_balance(self, batch, draws, seed):
        """No sample is ever used more than one epoch ahead of another.

        The shuffled-epoch stream guarantees usage counts differ by at most 1 at
        any instant (each epoch contains each sample exactly once; a
        boundary-spanning batch simply holds the tail of one epoch and the head
        of the next).  ``np.add.at`` is required for counting: plain fancy-index
        ``+=`` silently collapses duplicate indices.
        """
        n = 12
        ds = Dataset(np.arange(n, dtype=np.float64)[:, None],
                     np.zeros(n, dtype=np.int64), 1)
        sampler = MinibatchSampler(ds, batch, np.random.default_rng(seed))
        counts = np.zeros(n, dtype=np.int64)
        total = 0
        for _ in range(draws):
            X, _ = sampler.next_batch()
            np.add.at(counts, X[:, 0].astype(int), 1)
            total += X.shape[0]
        assert counts.sum() == total  # every drawn row is accounted for
        assert counts.max() - counts.min() <= 1

    @settings(max_examples=20, deadline=None)
    @given(similarity=st.floats(0.0, 1.0), seed=st.integers(0, 30))
    def test_similarity_partition_conserves_samples(self, similarity, seed):
        gen = np.random.default_rng(seed)
        y = np.repeat(np.arange(4), 25)
        pool = Dataset(gen.normal(size=(100, 3)), y, 4)
        test_pool = Dataset(gen.normal(size=(40, 3)), np.repeat(np.arange(4), 10), 4)
        fed = partition_similarity(pool, test_pool, num_edges=4,
                                   clients_per_edge=2, similarity=similarity,
                                   rng=gen)
        assert sum(e.train_size for e in fed.edges) == 100
        for edge in fed.edges:
            assert edge.num_clients == 2

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(1.0, 8.0), seed=st.integers(0, 20))
    def test_edge_shares_sizes_proportional(self, ratio, seed):
        """Training sizes track the requested shares within rounding (±2:
        the iid and skewed halves are cut independently, each rounding once)."""
        gen = np.random.default_rng(seed)
        y = np.repeat(np.arange(4), 50)
        pool = Dataset(gen.normal(size=(200, 3)), y, 4)
        test_pool = Dataset(gen.normal(size=(40, 3)), np.repeat(np.arange(4), 10), 4)
        shares = np.linspace(ratio, 1.0, 4)
        shares = shares / shares.sum()
        fed = partition_similarity(pool, test_pool, num_edges=4,
                                   clients_per_edge=1, similarity=0.5, rng=gen,
                                   edge_shares=shares)
        sizes = np.array([e.train_size for e in fed.edges])
        assert sizes.sum() == 200
        np.testing.assert_allclose(sizes, shares * 200, atol=2.0)
