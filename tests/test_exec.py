"""Execution-backend tests: bit-identity, RNG tokens, aliasing, resolution.

The contract under test is the one in :mod:`repro.exec.base`: for a fixed seed
every backend — serial, thread, process, vectorized — produces *bit-identical*
results, including under fault injection and across a checkpoint/resume cycle.
The serial backend defines the bits; the others must reproduce them exactly.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.baselines.fedavg import FedAvg
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.exec import (
    SERIAL_BACKEND,
    ClientWork,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    VectorizedBackend,
    available_backends,
    make_backend,
    resolve_backend,
    run_local_steps,
    run_local_steps_kernel,
)
from repro.faults import FaultPlan
from repro.nn.models import make_model_factory
from repro.sim.builder import build_flat_clients
from repro.utils.rng import (
    RngFactory,
    generator_from_token,
    generator_token,
    restore_generator,
)

BACKENDS = ("serial", "thread", "process", "vectorized")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """One live backend per canonical name; pools are closed after the test."""
    b = make_backend(request.param, workers=2)
    yield b
    b.close()


@pytest.fixture(scope="module")
def fed():
    """Small hierarchical dataset shared by the equivalence tests."""
    return make_federated_dataset("emnist_digits", scale="tiny", seed=11)


@pytest.fixture(scope="module")
def logistic_factory(fed):
    return make_model_factory("logistic", fed.input_dim, fed.num_classes)


@pytest.fixture(scope="module")
def mlp_factory(fed):
    return make_model_factory("mlp", fed.input_dim, fed.num_classes,
                              hidden=(12,))


def run_hierminimax(fed, factory, backend, *, rounds=4, faults=None,
                    checkpoint_path=None, checkpoint_every=None):
    algo = HierMinimax(fed, factory, tau1=2, tau2=2, m_edges=5,
                       eta_w=0.05, eta_p=2e-3, batch_size=8, seed=3,
                       faults=faults, backend=backend)
    result = algo.run(rounds=rounds, eval_every=2,
                      checkpoint_path=checkpoint_path,
                      checkpoint_every=checkpoint_every)
    algo.close()
    return result


def run_fedavg(fed, factory, backend, *, rounds=4, faults=None):
    algo = FedAvg(fed, factory, tau1=2, m_clients=15, eta_w=0.05,
                  batch_size=8, seed=3, faults=faults, backend=backend)
    result = algo.run(rounds=rounds, eval_every=2)
    algo.close()
    return result


def assert_results_identical(ref, got):
    """Bitwise comparison of two RunResults (params, weights, history, comm)."""
    np.testing.assert_array_equal(ref.final_params, got.final_params)
    if ref.final_weights is None:
        assert got.final_weights is None
    else:
        np.testing.assert_array_equal(ref.final_weights, got.final_weights)
    assert ref.history.as_dict() == got.history.as_dict()
    assert ref.comm.total_bytes == got.comm.total_bytes
    assert ref.rounds_run == got.rounds_run
    assert ref.slots_run == got.slots_run


# ------------------------------------------------------------ rng token utils
class TestGeneratorToken:
    def test_round_trip_continues_stream(self):
        g = np.random.default_rng(5)
        g.random(7)  # advance past the initial state
        clone = generator_from_token(generator_token(g))
        np.testing.assert_array_equal(g.random(16), clone.random(16))
        np.testing.assert_array_equal(g.integers(0, 100, 8),
                                      clone.integers(0, 100, 8))

    def test_token_survives_pickle_and_json(self):
        g = np.random.default_rng(9)
        g.integers(0, 10, 5)
        token = generator_token(g)
        for round_tripped in (pickle.loads(pickle.dumps(token)),
                              json.loads(json.dumps(token))):
            clone = generator_from_token(round_tripped)
            fresh = generator_from_token(generator_token(g))
            np.testing.assert_array_equal(fresh.random(8), clone.random(8))

    def test_restore_generator_in_place_keeps_aliases(self):
        g = np.random.default_rng(1)
        alias = g  # e.g. a sampler holding the client's generator
        snapshot = generator_token(g)
        g.random(100)
        restore_generator(g, snapshot)
        expected = generator_from_token(snapshot).random(4)
        np.testing.assert_array_equal(alias.random(4), expected)

    def test_restore_from_generator_source(self):
        src = np.random.default_rng(2)
        src.random(3)
        dst = np.random.default_rng(99)
        restore_generator(dst, src)
        np.testing.assert_array_equal(dst.random(5), src.random(5))

    def test_rejects_non_token(self):
        with pytest.raises((ValueError, KeyError, TypeError)):
            generator_from_token({"not": "a token"})


# ----------------------------------------------------- kernel/client aliasing
class TestKernelAliasing:
    def _engine_and_batches(self):
        rng = np.random.default_rng(0)
        engine = make_model_factory("logistic", 6, 3)()
        batches = [(rng.normal(size=(4, 6)), rng.integers(0, 3, 4))
                   for _ in range(3)]
        return engine, batches

    def test_kernel_copies_when_w_start_aliases_engine_params(self):
        engine, batches = self._engine_and_batches()
        w_alias = engine.params_view()  # the aliasing case the contract covers
        w_before = w_alias.copy()
        w_end, _ = run_local_steps_kernel(engine, w_alias, batches, lr=0.1)
        assert not np.array_equal(w_end, w_before)  # training moved the params
        # The returned array is a private copy, not the engine's buffer.
        assert not np.may_share_memory(w_end, engine.params_view())

    def test_kernel_does_not_mutate_caller_array(self):
        engine, batches = self._engine_and_batches()
        w_start = np.zeros(engine.params_view().size)
        w_copy = w_start.copy()
        run_local_steps_kernel(engine, w_start, batches, lr=0.1)
        np.testing.assert_array_equal(w_start, w_copy)

    def test_client_local_sgd_does_not_mutate_w_start(self, fed,
                                                      logistic_factory):
        engine = logistic_factory()
        clients = build_flat_clients(fed, batch_size=4,
                                     rng_factory=RngFactory(0))
        w_start = np.zeros(engine.params_view().size)
        w_copy = w_start.copy()
        w_end, _ = clients[0].local_sgd(engine, w_start, steps=3, lr=0.1)
        np.testing.assert_array_equal(w_start, w_copy)
        assert not np.may_share_memory(w_end, engine.params_view())


# -------------------------------------------------------- dispatch-level bits
class TestDispatchEquivalence:
    def _setup(self, fed, factory):
        engine = factory()
        clients = build_flat_clients(fed, batch_size=4,
                                     rng_factory=RngFactory(21))
        w0 = np.zeros(engine.params_view().size)
        return engine, clients, w0

    def _reference(self, fed, factory, work_spec):
        engine, clients, w0 = self._setup(fed, factory)
        work = [ClientWork(clients[i], s, c) for i, s, c in work_spec]
        results = run_local_steps(SERIAL_BACKEND, engine, w0, work, lr=0.05)
        states = [c.sampler.batches_drawn for c in clients]
        return results, states

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_matches_serial_with_checkpoints_and_duplicates(
            self, fed, logistic_factory, name):
        """Mixed steps, mid-run checkpoints, and duplicate clients all match."""
        # Client 2 appears twice (with-replacement sampling, as in DRFA/AFL).
        spec = [(0, 3, None), (1, 3, 2), (2, 2, None), (2, 3, 1), (4, 1, None)]
        ref, ref_states = self._reference(fed, logistic_factory, spec)
        engine, clients, w0 = self._setup(fed, logistic_factory)
        with make_backend(name, workers=2) as b:
            work = [ClientWork(clients[i], s, c) for i, s, c in spec]
            got = run_local_steps(b, engine, w0, work, lr=0.05)
        assert [r.client_id for r in got] == [r.client_id for r in ref]
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.w_end, g.w_end)
            if r.w_checkpoint is None:
                assert g.w_checkpoint is None
            else:
                np.testing.assert_array_equal(r.w_checkpoint, g.w_checkpoint)
        assert [c.sampler.batches_drawn for c in clients] == ref_states

    def test_vectorized_falls_back_for_mlp(self, fed, mlp_factory):
        """Non-logistic engines use the serial kernel inside VectorizedBackend."""
        spec = [(0, 2, None), (1, 2, None), (3, 2, 1)]
        ref, _ = self._reference(fed, mlp_factory, spec)
        engine, clients, w0 = self._setup(fed, mlp_factory)
        with VectorizedBackend() as b:
            work = [ClientWork(clients[i], s, c) for i, s, c in spec]
            got = run_local_steps(b, engine, w0, work, lr=0.05)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.w_end, g.w_end)


# ------------------------------------------------- full-algorithm equivalence
class TestAlgorithmEquivalence:
    """Satellite 3: whole training runs are bit-identical across backends."""

    @pytest.fixture(scope="class")
    def hm_reference(self, fed, logistic_factory):
        return run_hierminimax(fed, logistic_factory, "serial")

    @pytest.fixture(scope="class")
    def fedavg_reference(self, fed, logistic_factory):
        return run_fedavg(fed, logistic_factory, "serial")

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_hierminimax_bitwise(self, fed, logistic_factory, hm_reference,
                                 name):
        got = run_hierminimax(fed, logistic_factory, name)
        assert_results_identical(hm_reference, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_fedavg_bitwise(self, fed, logistic_factory, fedavg_reference,
                            name):
        got = run_fedavg(fed, logistic_factory, name)
        assert_results_identical(fedavg_reference, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_bitwise_under_faults(self, fed, logistic_factory, name):
        """Dropouts, stragglers, and lossy links do not break the contract."""
        plan = FaultPlan(client_dropout=0.2, client_straggle=0.2,
                         msg_loss=0.1, seed=1)
        ref = run_hierminimax(fed, logistic_factory, "serial", faults=plan)
        got = run_hierminimax(fed, logistic_factory, name, faults=plan)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_checkpoint_resume_across_backends(self, fed, logistic_factory,
                                               hm_reference, name, tmp_path):
        """A serial run checkpointed mid-flight, resumed on another backend,
        lands exactly where the uninterrupted serial run does."""
        ckpt = tmp_path / f"hm-{name}.ckpt.json"
        run_hierminimax(fed, logistic_factory, "serial", rounds=2,
                        checkpoint_path=ckpt, checkpoint_every=2)
        resumed = HierMinimax(fed, logistic_factory, tau1=2, tau2=2, m_edges=5,
                              eta_w=0.05, eta_p=2e-3, batch_size=8, seed=3,
                              backend=make_backend(name, workers=2))
        assert resumed.load_checkpoint(ckpt) == 2
        result = resumed.run(rounds=2, eval_every=2)
        resumed.close()
        np.testing.assert_array_equal(hm_reference.final_params,
                                      result.final_params)
        np.testing.assert_array_equal(hm_reference.final_weights,
                                      result.final_weights)
        assert (hm_reference.history.final().record.per_edge_accuracy
                == result.history.final().record.per_edge_accuracy).all()


# --------------------------------------------------------- backend resolution
class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_backend(None) is SERIAL_BACKEND

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        b = resolve_backend(None)
        try:
            assert isinstance(b, ThreadBackend)
            assert b.workers == 3
        finally:
            b.close()

    def test_instance_passthrough(self):
        b = SerialBackend()
        assert resolve_backend(b, workers=7) is b

    @pytest.mark.parametrize("alias,cls", [
        ("threads", ThreadBackend), ("mp", ProcessBackend),
        ("vec", VectorizedBackend), ("sync", SerialBackend)])
    def test_aliases(self, alias, cls):
        b = make_backend(alias)
        try:
            assert isinstance(b, cls)
        finally:
            b.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu")

    def test_available_backends_all_construct(self):
        for name in available_backends():
            b = make_backend(name, workers=2)
            assert isinstance(b, ExecutionBackend)
            assert b.name == name
            b.close()

    def test_context_manager_closes(self):
        with ThreadBackend(workers=2) as b:
            assert isinstance(b, ThreadBackend)
        # Closing twice is harmless.
        b.close()
