"""Execution-backend tests: bit-identity, RNG tokens, aliasing, resolution.

The contract under test is the one in :mod:`repro.exec.base`: for a fixed seed
every backend — serial, thread, process, vectorized — produces *bit-identical*
results, including under fault injection and across a checkpoint/resume cycle.
The serial backend defines the bits; the others must reproduce them exactly.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro.baselines.fedavg import FedAvg
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.exec import (
    SERIAL_BACKEND,
    ClientWork,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    VectorizedBackend,
    available_backends,
    make_backend,
    resolve_backend,
    run_local_steps,
    run_local_steps_kernel,
)
from repro.faults import FaultPlan
from repro.nn.models import make_model_factory
from repro.sim.builder import build_flat_clients
from repro.utils.rng import (
    RngFactory,
    generator_from_token,
    generator_token,
    restore_generator,
)

BACKENDS = ("serial", "thread", "process", "vectorized")


@pytest.fixture(params=BACKENDS)
def backend(request):
    """One live backend per canonical name; pools are closed after the test."""
    b = make_backend(request.param, workers=2)
    yield b
    b.close()


@pytest.fixture(scope="module")
def fed():
    """Small hierarchical dataset shared by the equivalence tests."""
    return make_federated_dataset("emnist_digits", scale="tiny", seed=11)


@pytest.fixture(scope="module")
def logistic_factory(fed):
    return make_model_factory("logistic", fed.input_dim, fed.num_classes)


@pytest.fixture(scope="module")
def mlp_factory(fed):
    return make_model_factory("mlp", fed.input_dim, fed.num_classes,
                              hidden=(12,))


def run_hierminimax(fed, factory, backend, *, rounds=4, faults=None,
                    checkpoint_path=None, checkpoint_every=None):
    algo = HierMinimax(fed, factory, tau1=2, tau2=2, m_edges=5,
                       eta_w=0.05, eta_p=2e-3, batch_size=8, seed=3,
                       faults=faults, backend=backend)
    result = algo.run(rounds=rounds, eval_every=2,
                      checkpoint_path=checkpoint_path,
                      checkpoint_every=checkpoint_every)
    algo.close()
    return result


def run_fedavg(fed, factory, backend, *, rounds=4, faults=None):
    algo = FedAvg(fed, factory, tau1=2, m_clients=15, eta_w=0.05,
                  batch_size=8, seed=3, faults=faults, backend=backend)
    result = algo.run(rounds=rounds, eval_every=2)
    algo.close()
    return result


def assert_results_identical(ref, got):
    """Bitwise comparison of two RunResults (params, weights, history, comm)."""
    np.testing.assert_array_equal(ref.final_params, got.final_params)
    if ref.final_weights is None:
        assert got.final_weights is None
    else:
        np.testing.assert_array_equal(ref.final_weights, got.final_weights)
    assert ref.history.as_dict() == got.history.as_dict()
    assert ref.comm.total_bytes == got.comm.total_bytes
    assert ref.rounds_run == got.rounds_run
    assert ref.slots_run == got.slots_run


# ------------------------------------------------------------ rng token utils
class TestGeneratorToken:
    def test_round_trip_continues_stream(self):
        g = np.random.default_rng(5)
        g.random(7)  # advance past the initial state
        clone = generator_from_token(generator_token(g))
        np.testing.assert_array_equal(g.random(16), clone.random(16))
        np.testing.assert_array_equal(g.integers(0, 100, 8),
                                      clone.integers(0, 100, 8))

    def test_token_survives_pickle_and_json(self):
        g = np.random.default_rng(9)
        g.integers(0, 10, 5)
        token = generator_token(g)
        for round_tripped in (pickle.loads(pickle.dumps(token)),
                              json.loads(json.dumps(token))):
            clone = generator_from_token(round_tripped)
            fresh = generator_from_token(generator_token(g))
            np.testing.assert_array_equal(fresh.random(8), clone.random(8))

    def test_restore_generator_in_place_keeps_aliases(self):
        g = np.random.default_rng(1)
        alias = g  # e.g. a sampler holding the client's generator
        snapshot = generator_token(g)
        g.random(100)
        restore_generator(g, snapshot)
        expected = generator_from_token(snapshot).random(4)
        np.testing.assert_array_equal(alias.random(4), expected)

    def test_restore_from_generator_source(self):
        src = np.random.default_rng(2)
        src.random(3)
        dst = np.random.default_rng(99)
        restore_generator(dst, src)
        np.testing.assert_array_equal(dst.random(5), src.random(5))

    def test_rejects_non_token(self):
        with pytest.raises((ValueError, KeyError, TypeError)):
            generator_from_token({"not": "a token"})


# ----------------------------------------------------- kernel/client aliasing
class TestKernelAliasing:
    def _engine_and_batches(self):
        rng = np.random.default_rng(0)
        engine = make_model_factory("logistic", 6, 3)()
        batches = [(rng.normal(size=(4, 6)), rng.integers(0, 3, 4))
                   for _ in range(3)]
        return engine, batches

    def test_kernel_copies_when_w_start_aliases_engine_params(self):
        engine, batches = self._engine_and_batches()
        w_alias = engine.params_view()  # the aliasing case the contract covers
        w_before = w_alias.copy()
        w_end, _ = run_local_steps_kernel(engine, w_alias, batches, lr=0.1)
        assert not np.array_equal(w_end, w_before)  # training moved the params
        # The returned array is a private copy, not the engine's buffer.
        assert not np.may_share_memory(w_end, engine.params_view())

    def test_kernel_does_not_mutate_caller_array(self):
        engine, batches = self._engine_and_batches()
        w_start = np.zeros(engine.params_view().size)
        w_copy = w_start.copy()
        run_local_steps_kernel(engine, w_start, batches, lr=0.1)
        np.testing.assert_array_equal(w_start, w_copy)

    def test_client_local_sgd_does_not_mutate_w_start(self, fed,
                                                      logistic_factory):
        engine = logistic_factory()
        clients = build_flat_clients(fed, batch_size=4,
                                     rng_factory=RngFactory(0))
        w_start = np.zeros(engine.params_view().size)
        w_copy = w_start.copy()
        w_end, _ = clients[0].local_sgd(engine, w_start, steps=3, lr=0.1)
        np.testing.assert_array_equal(w_start, w_copy)
        assert not np.may_share_memory(w_end, engine.params_view())


# -------------------------------------------------------- dispatch-level bits
class TestDispatchEquivalence:
    def _setup(self, fed, factory):
        engine = factory()
        clients = build_flat_clients(fed, batch_size=4,
                                     rng_factory=RngFactory(21))
        w0 = np.zeros(engine.params_view().size)
        return engine, clients, w0

    def _reference(self, fed, factory, work_spec):
        engine, clients, w0 = self._setup(fed, factory)
        work = [ClientWork(clients[i], s, c) for i, s, c in work_spec]
        results = run_local_steps(SERIAL_BACKEND, engine, w0, work, lr=0.05)
        states = [c.sampler.batches_drawn for c in clients]
        return results, states

    @pytest.mark.parametrize("model", ("logistic_factory", "mlp_factory"))
    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_matches_serial_with_checkpoints_and_duplicates(
            self, fed, name, model, request):
        """Mixed steps, mid-run checkpoints, and duplicate clients all match —
        for the convex logistic engine AND the non-convex MLP."""
        factory = request.getfixturevalue(model)
        # Client 2 appears twice (with-replacement sampling, as in DRFA/AFL).
        spec = [(0, 3, None), (1, 3, 2), (2, 2, None), (2, 3, 1), (4, 1, None)]
        ref, ref_states = self._reference(fed, factory, spec)
        engine, clients, w0 = self._setup(fed, factory)
        with make_backend(name, workers=2) as b:
            work = [ClientWork(clients[i], s, c) for i, s, c in spec]
            got = run_local_steps(b, engine, w0, work, lr=0.05)
        assert [r.client_id for r in got] == [r.client_id for r in ref]
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.w_end, g.w_end)
            if r.w_checkpoint is None:
                assert g.w_checkpoint is None
            else:
                np.testing.assert_array_equal(r.w_checkpoint, g.w_checkpoint)
        assert [c.sampler.batches_drawn for c in clients] == ref_states

    @pytest.mark.parametrize("model", ("logistic_factory", "mlp_factory"))
    def test_vectorized_batches_every_eligible_task(self, fed, model,
                                                    request):
        """Both paper models take the batched kernel — no silent fallback.

        The tracer's ``exec_vectorized_tasks_total`` counter must equal the
        task count: a task quietly demoted to the serial fallback would pass
        the bit-identity checks at serial speed, which is exactly the
        regression the batched MLP kernel exists to prevent.
        """
        from repro.obs import Tracer

        factory = request.getfixturevalue(model)
        spec = [(0, 2, None), (1, 2, None), (3, 2, 1)]
        ref, _ = self._reference(fed, factory, spec)
        engine, clients, w0 = self._setup(fed, factory)
        tracer = Tracer(None)
        with VectorizedBackend() as b:
            work = [ClientWork(clients[i], s, c) for i, s, c in spec]
            got = run_local_steps(b, engine, w0, work, lr=0.05, obs=tracer)
        counters = tracer.snapshot()["counters"]
        tracer.close()
        assert counters["exec_vectorized_tasks_total"] == len(spec)
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.w_end, g.w_end)

    def test_vectorized_falls_back_for_undeclared_layer(self, fed):
        """A layer subclass without its own ``vector_kind`` is ineligible.

        Eligibility is declared per exact class, never inherited: a subclass
        may override forward/backward, so the batched kernel must not assume
        its bits.  The fallback still matches serial exactly.
        """
        from repro.nn.layers import Linear, ReLU
        from repro.nn.network import NeuralNetwork
        from repro.obs import Tracer

        class CustomReLU(ReLU):  # no vector_kind re-declaration
            pass

        def factory():
            return NeuralNetwork(
                [Linear(fed.input_dim, 12), CustomReLU(),
                 Linear(12, fed.num_classes, weight_init="xavier")],
                input_dim=fed.input_dim, rng=0)

        spec = [(0, 2, None), (1, 2, 1)]
        ref, _ = self._reference(fed, factory, spec)
        engine, clients, w0 = self._setup(fed, factory)
        tracer = Tracer(None)
        with VectorizedBackend() as b:
            work = [ClientWork(clients[i], s, c) for i, s, c in spec]
            got = run_local_steps(b, engine, w0, work, lr=0.05, obs=tracer)
        counters = tracer.snapshot()["counters"]
        tracer.close()
        assert counters["exec_vectorized_tasks_total"] == 0
        for r, g in zip(ref, got):
            np.testing.assert_array_equal(r.w_end, g.w_end)

    def test_ragged_batches_take_their_own_group(self, fed, mlp_factory):
        """Regression: grouping keyed on only the first batch's shapes.

        Tasks whose *later* batches differ in size used to be stacked into
        one group and crash ``np.stack`` mid-kernel.  Now the group key
        carries every step's shapes, and a batch list inconsistent with the
        declared step count is demoted to the serial fallback.
        """
        from repro.exec.base import LocalStepsTask
        from repro.ops.projections import identity_projection

        engine = mlp_factory()
        rng = np.random.default_rng(7)
        dim = fed.input_dim
        w0 = np.zeros(engine.params_view().size)

        def make_task(index, sizes, steps=None):
            batches = [(rng.normal(size=(s, dim)),
                        rng.integers(0, fed.num_classes, size=s))
                       for s in sizes]
            return LocalStepsTask(
                index=index, client_id=index, steps=steps or len(sizes),
                lr=0.05, checkpoint_after=None,
                projection=identity_projection, batches=batches,
                sampler_state=None)

        tasks = [make_task(0, [4, 4, 4]),
                 make_task(1, [4, 4, 3]),   # ragged final batch
                 make_task(2, [4, 4, 3]),   # same ragged shape: groups with 1
                 make_task(3, [4, 4, 4]),
                 make_task(4, [4, 4], steps=3)]  # fewer batches than steps
        with VectorizedBackend() as b:
            got = b.run_tasks(engine, w0, tasks)
        for task, g in zip(tasks, got):
            w_end, _ = run_local_steps_kernel(
                engine, w0, task.batches, lr=task.lr,
                projection=task.projection, checkpoint_after=None)
            np.testing.assert_array_equal(w_end, g.w_end)

    @pytest.mark.parametrize("model", ("logistic_factory", "mlp_factory"))
    def test_random_group_compositions_match_serial(self, fed, model,
                                                    request):
        """Property-style: arbitrary dispatch compositions never change bits.

        Randomized rosters (subset, order, duplicates), step counts, and
        checkpoint positions — whatever groups the vectorized backend forms,
        every client's result must equal the serial reference.
        """
        factory = request.getfixturevalue(model)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(2, 9))
            spec = []
            for _ in range(n):
                steps = int(rng.integers(1, 5))
                ckpt = (None if rng.random() < 0.5
                        else int(rng.integers(1, steps + 1)))
                spec.append((int(rng.integers(0, 10)), steps, ckpt))
            ref, _ = self._reference(fed, factory, spec)
            engine, clients, w0 = self._setup(fed, factory)
            with VectorizedBackend() as b:
                work = [ClientWork(clients[i], s, c) for i, s, c in spec]
                got = run_local_steps(b, engine, w0, work, lr=0.05)
            for r, g in zip(ref, got):
                np.testing.assert_array_equal(r.w_end, g.w_end, err_msg=(
                    f"seed={seed} spec={spec}"))
                if r.w_checkpoint is not None:
                    np.testing.assert_array_equal(r.w_checkpoint,
                                                  g.w_checkpoint)

    def test_batched_step_ties_to_gradcheck(self, fed, mlp_factory):
        """One batched step == the engine's analytic-gradient step, and the
        analytic gradient itself passes finite-difference gradient check —
        chaining the stacked kernel all the way to first principles."""
        from repro.exec.base import LocalStepsTask
        from repro.nn.gradcheck import gradient_check
        from repro.ops.projections import identity_projection

        engine = mlp_factory()
        engine.initialize(3)
        w0 = engine.get_params()
        rng = np.random.default_rng(11)
        X = rng.normal(size=(6, fed.input_dim))
        y = rng.integers(0, fed.num_classes, size=6)
        task = LocalStepsTask(index=0, client_id=0, steps=1, lr=0.1,
                              checkpoint_after=None,
                              projection=identity_projection,
                              batches=[(X, y)], sampler_state=None)
        with VectorizedBackend() as b:
            got = b.run_tasks(engine, w0, [task])[0]
        engine.set_params(w0)
        _, grad = engine.loss_and_gradient(X, y)
        np.testing.assert_array_equal(got.w_end, w0 - 0.1 * grad)
        assert gradient_check(engine, X, y, tol=1e-4) < 1e-4


# ------------------------------------------------- full-algorithm equivalence
class TestAlgorithmEquivalence:
    """Satellite 3: whole training runs are bit-identical across backends."""

    @pytest.fixture(scope="class")
    def hm_reference(self, fed, logistic_factory):
        return run_hierminimax(fed, logistic_factory, "serial")

    @pytest.fixture(scope="class")
    def fedavg_reference(self, fed, logistic_factory):
        return run_fedavg(fed, logistic_factory, "serial")

    @pytest.fixture(scope="class")
    def hm_mlp_reference(self, fed, mlp_factory):
        return run_hierminimax(fed, mlp_factory, "serial")

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_hierminimax_bitwise(self, fed, logistic_factory, hm_reference,
                                 name):
        got = run_hierminimax(fed, logistic_factory, name)
        assert_results_identical(hm_reference, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_hierminimax_mlp_bitwise(self, fed, mlp_factory,
                                     hm_mlp_reference, name):
        """Whole MLP training runs are bit-identical too — the batched MLP
        kernel inherits the full determinism contract, not just the
        dispatch-level checks."""
        got = run_hierminimax(fed, mlp_factory, name)
        assert_results_identical(hm_mlp_reference, got)

    def test_mlp_checkpoint_resume_on_vectorized(self, fed, mlp_factory,
                                                 hm_mlp_reference, tmp_path):
        """A serial MLP run checkpointed mid-flight and resumed on the
        vectorized backend lands exactly on the uninterrupted serial run."""
        ckpt = tmp_path / "hm-mlp-vec.ckpt.json"
        run_hierminimax(fed, mlp_factory, "serial", rounds=2,
                        checkpoint_path=ckpt, checkpoint_every=2)
        resumed = HierMinimax(fed, mlp_factory, tau1=2, tau2=2, m_edges=5,
                              eta_w=0.05, eta_p=2e-3, batch_size=8, seed=3,
                              backend=make_backend("vectorized"))
        assert resumed.load_checkpoint(ckpt) == 2
        result = resumed.run(rounds=2, eval_every=2)
        resumed.close()
        np.testing.assert_array_equal(hm_mlp_reference.final_params,
                                      result.final_params)
        np.testing.assert_array_equal(hm_mlp_reference.final_weights,
                                      result.final_weights)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_fedavg_bitwise(self, fed, logistic_factory, fedavg_reference,
                            name):
        got = run_fedavg(fed, logistic_factory, name)
        assert_results_identical(fedavg_reference, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_bitwise_under_faults(self, fed, logistic_factory, name):
        """Dropouts, stragglers, and lossy links do not break the contract."""
        plan = FaultPlan(client_dropout=0.2, client_straggle=0.2,
                         msg_loss=0.1, seed=1)
        ref = run_hierminimax(fed, logistic_factory, "serial", faults=plan)
        got = run_hierminimax(fed, logistic_factory, name, faults=plan)
        assert_results_identical(ref, got)

    @pytest.mark.parametrize("name", BACKENDS[1:])
    def test_checkpoint_resume_across_backends(self, fed, logistic_factory,
                                               hm_reference, name, tmp_path):
        """A serial run checkpointed mid-flight, resumed on another backend,
        lands exactly where the uninterrupted serial run does."""
        ckpt = tmp_path / f"hm-{name}.ckpt.json"
        run_hierminimax(fed, logistic_factory, "serial", rounds=2,
                        checkpoint_path=ckpt, checkpoint_every=2)
        resumed = HierMinimax(fed, logistic_factory, tau1=2, tau2=2, m_edges=5,
                              eta_w=0.05, eta_p=2e-3, batch_size=8, seed=3,
                              backend=make_backend(name, workers=2))
        assert resumed.load_checkpoint(ckpt) == 2
        result = resumed.run(rounds=2, eval_every=2)
        resumed.close()
        np.testing.assert_array_equal(hm_reference.final_params,
                                      result.final_params)
        np.testing.assert_array_equal(hm_reference.final_weights,
                                      result.final_weights)
        assert (hm_reference.history.final().record.per_edge_accuracy
                == result.history.final().record.per_edge_accuracy).all()


# --------------------------------------------------------- backend resolution
class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_backend(None) is SERIAL_BACKEND

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        b = resolve_backend(None)
        try:
            assert isinstance(b, ThreadBackend)
            assert b.workers == 3
        finally:
            b.close()

    def test_instance_passthrough(self):
        b = SerialBackend()
        assert resolve_backend(b, workers=7) is b

    @pytest.mark.parametrize("alias,cls", [
        ("threads", ThreadBackend), ("mp", ProcessBackend),
        ("vec", VectorizedBackend), ("sync", SerialBackend)])
    def test_aliases(self, alias, cls):
        b = make_backend(alias)
        try:
            assert isinstance(b, cls)
        finally:
            b.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            make_backend("gpu")

    def test_available_backends_all_construct(self):
        for name in available_backends():
            b = make_backend(name, workers=2)
            assert isinstance(b, ExecutionBackend)
            assert b.name == name
            b.close()

    def test_context_manager_closes(self):
        with ThreadBackend(workers=2) as b:
            assert isinstance(b, ThreadBackend)
        # Closing twice is harmless.
        b.close()
