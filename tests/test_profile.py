"""Tests for the profiler and critical-path layers of repro.obs.

Covers the observability v2 contract: the span profiler's self/cumulative
tables (wall and simulated clocks), folded-stack and speedscope exports, the
critical-path replay of recorded timing trees (chain == makespan, per-entity
blame, parallelism efficiency), lenient ingestion of truncated traces, the
heartbeat progress channel with ``follow_trace``, kill/resume trace
concatenation, and the traced-vs-untraced bit-identicality guarantee on every
execution backend.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro import cli
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.exec import available_backends, make_backend
from repro.nn.models import make_model_factory
from repro.obs import (
    NullTracer,
    Tracer,
    TraceWriter,
    analyze_critical_paths,
    analyze_round_tree,
    analyze_trace,
    folded_stacks,
    follow_trace,
    format_critical_path,
    format_profile,
    format_trace_report,
    load_trace,
    profile_trace,
    speedscope_document,
)
from repro.obs.profile import build_span_forest, profile_events
from repro.simtime import SimTimer, make_cost_model

COST_SPEC = "hetero,seed=1,device_sigma=0.3,slow_clients=0,slow_factor=10"


def tiny_algo(obs=None, seed=0, timing=None, backend=None):
    data = make_federated_dataset("emnist_digits", seed=seed, scale="tiny")
    factory = make_model_factory("logistic", data.input_dim, data.num_classes)
    return HierMinimax(data, factory, tau1=2, tau2=2, m_edges=5, batch_size=8,
                       eta_w=0.05, eta_p=2e-3, seed=seed, obs=obs,
                       timing=timing, backend=backend)


def span_ev(name, depth, t, dur, path=None, attrs=None):
    return {"ev": "span", "name": name, "path": path or name, "depth": depth,
            "t": t, "dur_s": dur, "attrs": attrs or {}}


#: A hand-built round tree with a known critical path: the round serially
#: chains a 2-branch parallel fan-out (edge:0 is the straggler at 8 s) and a
#: 2 s cloud step, so the makespan is 10 s while the work is 14 s.
ROUND_TREE = {
    "kind": "round", "round": 3, "dur_s": 10.0, "children": [
        {"kind": "parallel", "label": "edges", "dur_s": 8.0, "children": [
            {"kind": "branch", "label": "edge:0", "dur_s": 8.0, "children": [
                {"kind": "compute", "dur_s": 5.0, "entity": 0},
                {"kind": "transfer", "dur_s": 3.0, "link": "edge_cloud",
                 "entity": 0},
            ]},
            {"kind": "branch", "label": "edge:1", "dur_s": 4.0, "children": [
                {"kind": "compute", "dur_s": 4.0, "entity": 1},
            ]},
        ]},
        {"kind": "compute", "dur_s": 2.0, "entity": "cloud",
         "label": "cloud_update"},
    ],
}


# ------------------------------------------------------- forest reconstruction
class TestSpanForest:
    def test_children_precede_parents(self):
        events = [
            span_ev("inner", 2, 0.1, 0.5, path="run/outer/inner"),
            span_ev("outer", 1, 0.0, 0.6, path="run/outer"),
            span_ev("sibling", 1, 0.7, 0.2, path="run/sibling"),
            span_ev("run", 0, 0.0, 1.0),
        ]
        # Spans are written at close time: "outer" (written after its child)
        # must adopt "inner"; "sibling" closed later at the same depth and
        # stays a direct child of "run".
        forest = build_span_forest(events)
        assert [n.name for n in forest] == ["run"]
        run = forest[0]
        assert [c.name for c in run.children] == ["outer", "sibling"]
        assert [c.name for c in run.children[0].children] == ["inner"]

    def test_proper_nesting_and_self_time(self):
        events = [
            span_ev("a", 1, 0.0, 1.0, path="run/a"),
            span_ev("b", 1, 1.0, 2.0, path="run/b"),
            span_ev("run", 0, 0.0, 4.0),
        ]
        (run,) = build_span_forest(events)
        assert [c.name for c in run.children] == ["a", "b"]
        assert run.self_s == pytest.approx(1.0)  # 4 - (1 + 2)
        assert run.children[0].self_s == pytest.approx(1.0)

    def test_multiple_roots(self):
        events = [
            span_ev("data_gen", 0, 0.0, 0.5),
            span_ev("evaluate", 1, 0.6, 0.1, path="run/evaluate"),
            span_ev("run", 0, 0.6, 0.9),
        ]
        forest = build_span_forest(events)
        assert [n.name for n in forest] == ["data_gen", "run"]
        assert [c.name for c in forest[1].children] == ["evaluate"]

    def test_non_span_events_ignored(self):
        events = [{"ev": "trace_start", "meta": {}},
                  span_ev("run", 0, 0.0, 1.0),
                  {"ev": "trace_end"}]
        assert len(build_span_forest(events)) == 1


# -------------------------------------------------------------- profile tables
class TestProfileTables:
    EVENTS = [
        {"ev": "trace_start", "t": 0.0, "meta": {}},
        span_ev("phase1", 2, 0.0, 3.0, path="run/cloud_round/phase1"),
        span_ev("cloud_round", 1, 0.0, 4.0, path="run/cloud_round",
                attrs={"round": 0, "sim_tree": ROUND_TREE}),
        span_ev("run", 0, 0.0, 5.0),
        {"ev": "trace_end", "t": 5.0},
    ]

    def test_wall_table_self_vs_cum(self):
        profile = profile_events(self.EVENTS)
        assert profile.wall["run"]["cum_s"] == pytest.approx(5.0)
        assert profile.wall["run"]["self_s"] == pytest.approx(1.0)
        assert profile.wall["cloud_round"]["self_s"] == pytest.approx(1.0)
        assert profile.wall["phase1"]["self_s"] == pytest.approx(3.0)
        assert profile.wall_total_s == pytest.approx(5.0)

    def test_sim_table_from_recorded_trees(self):
        profile = profile_events(self.EVENTS)
        assert profile.sim_trees == (ROUND_TREE,)
        assert profile.sim_total_s == pytest.approx(10.0)
        # Leaves aggregate under their kind, scopes under their label; the
        # "round" scope's self time is clamped (children sum to 10 = dur).
        assert profile.sim["compute"]["cum_s"] == pytest.approx(9.0)
        assert profile.sim["transfer"]["cum_s"] == pytest.approx(3.0)
        assert profile.sim["edge:0"]["self_s"] == pytest.approx(0.0)
        assert profile.sim["round"]["self_s"] == pytest.approx(0.0)
        # cloud_update is a *labelled leaf*: it keys by label, not kind.
        assert profile.sim["cloud_update"]["cum_s"] == pytest.approx(2.0)

    def test_format_profile_tables_and_sort(self):
        text = format_profile(profile_events(self.EVENTS))
        assert "wall-clock (per span name):" in text
        assert "simulated time" in text and "total work" in text
        assert "cloud_round" in text and "transfer" in text
        with pytest.raises(ValueError):
            format_profile(profile_events(self.EVENTS), sort="nope")

    def test_format_profile_limit_elides(self):
        text = format_profile(profile_events(self.EVENTS), limit=1)
        assert "rows elided" in text

    def test_folded_wall_stacks(self):
        lines = folded_stacks(profile_events(self.EVENTS), clock="wall")
        folded = dict(line.rsplit(" ", 1) for line in lines)
        assert folded["run"] == str(1_000_000)
        assert folded["run;cloud_round;phase1"] == str(3_000_000)

    def test_folded_sim_stacks(self):
        lines = folded_stacks(profile_events(self.EVENTS), clock="sim")
        folded = {k: int(v) for k, v in
                  (line.rsplit(" ", 1) for line in lines)}
        assert folded["round;edges;edge:0;transfer:edge_cloud:0"] == 3_000_000
        assert folded["round;edges;edge:1;compute:1"] == 4_000_000
        assert sum(folded.values()) == 14_000_000  # total work, not makespan
        with pytest.raises(ValueError):
            folded_stacks(profile_events(self.EVENTS), clock="cpu")

    def test_speedscope_document_shape(self):
        doc = speedscope_document(profile_events(self.EVENTS), name="t")
        assert doc["$schema"].endswith("file-format-schema.json")
        assert len(doc["profiles"]) == 1  # one evented profile per root
        events = doc["profiles"][0]["events"]
        opens = [e for e in events if e["type"] == "O"]
        closes = [e for e in events if e["type"] == "C"]
        assert len(opens) == len(closes) == 3
        # Timestamps are monotone — speedscope rejects out-of-order events.
        stamps = [e["at"] for e in events]
        assert stamps == sorted(stamps)
        json.dumps(doc)  # JSON-serializable end to end


# -------------------------------------------------------------- critical path
class TestCriticalPath:
    def test_chain_equals_makespan(self):
        r = analyze_round_tree(ROUND_TREE)
        assert r.round_index == 3
        assert r.makespan_s == 10.0
        assert r.chain_s == pytest.approx(r.makespan_s)
        assert [s.kind for s in r.chain] == ["compute", "transfer", "compute"]

    def test_parallel_picks_slowest_branch(self):
        r = analyze_round_tree(ROUND_TREE)
        # edge:1 (4 s) loses the barrier to edge:0 (8 s): never on the chain.
        assert all(s.blame != "edge:1" for s in r.chain)
        assert r.blame == pytest.approx({"edge:0": 8.0, "cloud_update": 2.0})
        assert r.top_blame == "edge:0"

    def test_kind_at_link_attribution(self):
        r = analyze_round_tree(ROUND_TREE)
        assert r.by_kind == pytest.approx(
            {"compute": 7.0, "transfer@edge_cloud": 3.0})

    def test_width_work_efficiency(self):
        r = analyze_round_tree(ROUND_TREE)
        assert r.width == 2          # the parallel fan-out has two branches
        assert r.work_s == pytest.approx(14.0)
        assert r.efficiency == pytest.approx(14.0 / (10.0 * 2))

    def test_report_aggregates_rounds(self):
        report = analyze_critical_paths([ROUND_TREE, ROUND_TREE])
        assert len(report.rounds) == 2
        assert report.makespan_s == pytest.approx(20.0)
        assert report.work_s == pytest.approx(28.0)
        assert report.blame["edge:0"] == pytest.approx(16.0)
        assert 0.0 < report.efficiency <= 1.0
        json.dumps(report.as_dict())  # --json embedding stays serializable
        assert report.as_dict()["rounds"][0]["top_blame"] == "edge:0"

    def test_format_sections(self):
        text = format_critical_path(analyze_critical_paths([ROUND_TREE]))
        for needle in ("critical path (1 recorded rounds)",
                       "parallelism efficiency", "blame", "edge:0",
                       "transfer@edge_cloud", "waits on edge:0"):
            assert needle in text

    def test_empty_tree_is_harmless(self):
        r = analyze_round_tree({"kind": "round", "round": 0, "dur_s": 0.0,
                                "children": []})
        assert r.chain == () and r.top_blame is None
        assert r.efficiency == 1.0


# ----------------------------------------------------- real traced runs (sim)
class TestTracedRunProfile:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("prof") / "run.trace.jsonl"
        obs = Tracer(str(path))
        result = tiny_algo(
            obs=obs, timing=SimTimer(make_cost_model(COST_SPEC))).run(
                rounds=6, eval_every=3)
        obs.close()
        return path, result

    def test_profile_matches_trace_report(self, traced):
        path, result = traced
        profile = profile_trace(path)
        report = analyze_trace(path)
        for name, slot in profile.wall.items():
            assert report.span_totals[name]["count"] == slot["count"]
        assert len(profile.sim_trees) == result.rounds_run
        assert profile.sim_total_s == pytest.approx(result.sim_time_s,
                                                    rel=1e-9)

    def test_round_chains_sum_to_makespans(self, traced):
        path, result = traced
        report = analyze_critical_paths(profile_trace(path).sim_trees)
        assert [r.round_index for r in report.rounds] == list(range(6))
        for r in report.rounds:
            assert r.chain_s == pytest.approx(r.makespan_s, rel=1e-9)
            assert r.chain and r.width >= 1
            assert 0.0 < r.efficiency <= 1.0 + 1e-9
        assert report.makespan_s == pytest.approx(result.sim_time_s, rel=1e-9)

    def test_trace_report_embeds_critical_path(self, traced):
        path, _ = traced
        text = format_trace_report(analyze_trace(path))
        assert "critical path (6 recorded rounds)" in text
        assert "parallelism efficiency" in text
        assert "heartbeats" in text

    def test_cli_trace_profile(self, traced, tmp_path, capsys):
        path, _ = traced
        assert cli.main(["trace-profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wall-clock (per span name):" in out
        assert "simulated time" in out
        ss = tmp_path / "out.speedscope.json"
        assert cli.main(["trace-profile", str(path), "--folded", "sim",
                         "--speedscope", str(ss)]) == 0
        out = capsys.readouterr().out
        assert out and all(line.rsplit(" ", 1)[1].isdigit()
                           for line in out.strip().splitlines())
        assert json.loads(ss.read_text())["profiles"]

    def test_cli_missing_trace(self, tmp_path, capsys):
        assert cli.main(["trace-profile", str(tmp_path / "no.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err


# ------------------------------------------------------------ lenient loading
class TestTruncatedTrace:
    @pytest.fixture()
    def truncated(self, tmp_path):
        path = tmp_path / "killed.trace.jsonl"
        obs = Tracer(str(path))
        tiny_algo(obs=obs).run(rounds=3, eval_every=3)
        obs.close()
        # Simulate a SIGKILL mid-write: a final line cut off before its quote.
        with path.open("a") as fh:
            fh.write('{"ev": "span", "name": "pha')
        return path

    def test_lenient_load_warns_and_skips(self, truncated):
        with pytest.warns(UserWarning, match="skipping malformed"):
            events = load_trace(truncated)
        assert all(e.get("ev") != "span" or e["name"] != "pha"
                   for e in events)

    def test_strict_load_raises(self, truncated):
        with pytest.raises(ValueError, match="not a JSON trace record"):
            load_trace(truncated, strict=True)

    def test_truncated_trace_still_reports_and_profiles(self, truncated):
        with pytest.warns(UserWarning):
            report = analyze_trace(truncated)
        assert len(report.rounds) == 3
        with pytest.warns(UserWarning):
            profile = profile_trace(truncated)
        assert profile.wall["cloud_round"]["count"] == 3


# ------------------------------------------------------- heartbeats & follow
class TestHeartbeat:
    def test_throttled_to_every_nth(self):
        buf = io.StringIO()
        obs = Tracer(TraceWriter(buf, flush_every=1), heartbeat_every=3)
        for k in range(7):
            obs.heartbeat(round=k)
        beats = [json.loads(line) for line in buf.getvalue().splitlines()
                 if '"heartbeat"' in line]
        assert [b["fields"]["round"] for b in beats] == [0, 3, 6]

    def test_carries_gauges(self):
        buf = io.StringIO()
        obs = Tracer(TraceWriter(buf, flush_every=1))
        obs.gauge("worst_edge_loss", 1.5)
        obs.heartbeat(round=0)
        beat = next(json.loads(line) for line in buf.getvalue().splitlines()
                    if '"heartbeat"' in line)
        assert beat["fields"]["gauges"] == {"worst_edge_loss": 1.5}

    def test_invalid_throttle_rejected(self):
        with pytest.raises(ValueError):
            Tracer(heartbeat_every=0)

    def test_writerless_and_null_tracers_noop(self):
        Tracer(None).heartbeat(round=0)      # no writer: silently dropped
        NullTracer().heartbeat(round=0)

    def test_traced_run_emits_one_per_round(self, tmp_path):
        path = tmp_path / "hb.trace.jsonl"
        obs = Tracer(str(path))
        tiny_algo(obs=obs).run(rounds=4, eval_every=2)
        obs.close()
        report = analyze_trace(path)
        assert len(report.heartbeats) == 4
        assert [h["round"] for h in report.heartbeats] == list(range(4))
        assert all(h["algorithm"] == "hierminimax"
                   for h in report.heartbeats)


class TestFollowTrace:
    def test_follow_reads_to_trace_end(self, tmp_path):
        path = tmp_path / "done.trace.jsonl"
        obs = Tracer(str(path))
        tiny_algo(obs=obs).run(rounds=2, eval_every=2)
        obs.close()
        events = list(follow_trace(path, poll_s=0.01))
        assert events[-1]["ev"] == "trace_end"
        assert events == load_trace(path)

    def test_partial_final_line_buffered_until_timeout(self, tmp_path):
        path = tmp_path / "live.trace.jsonl"
        path.write_text('{"ev": "trace_start", "t": 0.0, "meta": {}}\n'
                        '{"ev": "log", "t": 0.1, "kind": "heartbeat", '
                        '"fields": {"round": 0}}\n'
                        '{"ev": "log", "t": 0.2, "ki')  # writer mid-append
        events = list(follow_trace(path, poll_s=0.01, timeout_s=0.05))
        # The complete records arrive; the partial line is buffered (never
        # yielded truncated) and the idle timeout ends the tail.
        assert [e["ev"] for e in events] == ["trace_start", "log"]

    def test_cli_follow_narrates_heartbeats(self, tmp_path, capsys):
        path = tmp_path / "f.trace.jsonl"
        obs = Tracer(str(path))
        tiny_algo(obs=obs).run(rounds=3, eval_every=3)
        obs.close()
        rc = cli.main(["trace-report", str(path), "--follow",
                       "--poll", "0.05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("heartbeat ") == 3
        assert "trace end reached" in out
        assert "per-phase breakdown" in out  # full report still follows


# ------------------------------------------------- kill/resume concatenation
class TestResumedTraceConcatenation:
    def test_concatenated_traces_profile_identically(self, tmp_path):
        """A run killed after its checkpoint and resumed in a second process
        leaves two traces; concatenated, they must profile to the same
        per-kind simulated-time totals as the uninterrupted run's trace."""
        def timed_algo(obs):
            return tiny_algo(obs=obs,
                             timing=SimTimer(make_cost_model(COST_SPEC)))

        full_path = tmp_path / "full.trace.jsonl"
        with Tracer(str(full_path)) as obs:
            full = timed_algo(obs).run(rounds=6, eval_every=3)

        ckpt = tmp_path / "run.ckpt.json"
        first_path = tmp_path / "first.trace.jsonl"
        with Tracer(str(first_path)) as obs:
            timed_algo(obs).run(rounds=3, eval_every=3,
                                checkpoint_path=ckpt, checkpoint_every=3)
        second_path = tmp_path / "second.trace.jsonl"
        with Tracer(str(second_path)) as obs:
            resumed = timed_algo(obs)
            assert resumed.load_checkpoint(ckpt) == 3
            res = resumed.run(rounds=3, eval_every=3)

        np.testing.assert_array_equal(full.final_params, res.final_params)

        cat = tmp_path / "cat.trace.jsonl"
        cat.write_text(first_path.read_text() + second_path.read_text())
        stitched = profile_trace(cat)
        reference = profile_trace(full_path)

        # Same rounds recorded, in order, with bit-equal per-kind totals.
        assert len(stitched.sim_trees) == 6
        assert stitched.sim_total_s == reference.sim_total_s
        assert set(stitched.sim) == set(reference.sim)
        for key, slot in reference.sim.items():
            assert stitched.sim[key]["count"] == slot["count"]
            assert stitched.sim[key]["cum_s"] == slot["cum_s"], key
            assert stitched.sim[key]["self_s"] == slot["self_s"], key

        # The critical-path replay stitches seamlessly too.
        ref_cp = analyze_critical_paths(reference.sim_trees)
        cat_cp = analyze_critical_paths(stitched.sim_trees)
        assert [r.round_index for r in cat_cp.rounds] == list(range(6))
        assert cat_cp.makespan_s == ref_cp.makespan_s
        assert cat_cp.blame == ref_cp.blame


# ------------------------------------------------ determinism (all backends)
class TestBackendBitIdenticality:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_traced_equals_untraced(self, name, tmp_path):
        """Tracing (spans, metrics, heartbeats, recorded timing trees) never
        perturbs the numerics — on every execution backend."""
        plain_algo = tiny_algo(backend=make_backend(name, workers=2),
                               timing=SimTimer(make_cost_model(COST_SPEC)))
        plain = plain_algo.run(rounds=4, eval_every=2)
        plain_algo.close()

        obs = Tracer(str(tmp_path / f"{name}.trace.jsonl"))
        traced_algo = tiny_algo(obs=obs,
                                backend=make_backend(name, workers=2),
                                timing=SimTimer(make_cost_model(COST_SPEC)))
        traced = traced_algo.run(rounds=4, eval_every=2)
        traced_algo.close()
        obs.close()

        assert np.array_equal(plain.final_params, traced.final_params)
        assert np.array_equal(plain.final_weights, traced.final_weights)
        assert plain.comm.cycles == traced.comm.cycles
        assert plain.comm.floats == traced.comm.floats
        # The virtual clock agrees bit-for-bit as well — recording the round
        # trees adds labels to existing scopes, never new ones.
        assert plain.sim_time_s == traced.sim_time_s

    def test_all_four_backends_present(self):
        assert set(available_backends()) == {"serial", "thread", "process",
                                             "vectorized"}
