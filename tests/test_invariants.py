"""Runtime invariant monitoring: tripwire checks over a live training run.

Contracts (``src/repro/invariants.py``): the monitor is off by default, costs
nothing when off, and is bit-identical when on (pure reads only); violations
are recorded with structured diagnostics, emitted as ``invariant`` trace
events, surfaced by ``trace-report``, and upgraded to exceptions only under
``strict=True``.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.hierminimax import HierMinimax
from repro.invariants import (
    DEFAULT_CHECKS,
    InvariantMonitor,
    InvariantViolationError,
)
from repro.nn.models import make_model_factory
from repro.obs import NullTracer, Tracer, analyze_trace, format_trace_report

from .conftest import make_blob_fed


@pytest.fixture(scope="module")
def fed():
    return make_blob_fed(num_edges=3, clients_per_edge=2, seed=5)


@pytest.fixture(scope="module")
def factory():
    return make_model_factory("logistic", 5, 3)


def run(fed, factory, *, obs=None, rounds=4):
    algo = HierMinimax(fed, factory, tau1=2, tau2=2, m_edges=2,
                       eta_w=0.05, eta_p=2e-3, batch_size=4, seed=3, obs=obs)
    result = algo.run(rounds=rounds, eval_every=2)
    algo.close()
    return result


# ---------------------------------------------------------------------------
# Wiring: off by default, attached through the tracer, bit-identical when on
# ---------------------------------------------------------------------------
class TestWiring:
    def test_off_by_default(self):
        assert NullTracer().invariants is None
        assert Tracer().invariants is None

    def test_tracer_true_builds_default_monitor(self):
        tracer = Tracer(invariants=True)
        assert isinstance(tracer.invariants, InvariantMonitor)
        custom = InvariantMonitor(checks=("finite_model",))
        assert Tracer(invariants=custom).invariants is custom

    def test_monitored_run_is_bit_identical_and_clean(self, fed, factory):
        ref = run(fed, factory)
        tracer = Tracer(invariants=True)
        got = run(fed, factory, obs=tracer)
        np.testing.assert_array_equal(ref.final_params, got.final_params)
        np.testing.assert_array_equal(ref.final_weights, got.final_weights)
        assert ref.history.as_dict() == got.history.as_dict()
        monitor = tracer.invariants
        assert monitor.ok and monitor.violations == []
        assert monitor.rounds_checked == 4
        counters = tracer.snapshot()["counters"]
        assert counters["invariant_checks_total"] == 4
        assert "invariant_violations_total" not in counters


# ---------------------------------------------------------------------------
# The checks themselves, against rigged algorithm state
# ---------------------------------------------------------------------------
def _healthy_stub():
    """Minimal duck-typed algorithm satisfying every default check."""
    history = SimpleNamespace(final=lambda: None, __len__=lambda self: 0)
    snapshot = SimpleNamespace(cycles={}, messages={}, floats={})
    return SimpleNamespace(
        w=np.zeros(4),
        _history=None,
        current_weights=lambda: np.full(4, 0.25),
        tracker=SimpleNamespace(snapshot=lambda: snapshot),
        membership=SimpleNamespace(enabled=False),
        obs=SimpleNamespace(metrics=None),
    )


class TestChecks:
    def test_finite_model_violation(self):
        algo = _healthy_stub()
        algo.w = np.array([1.0, np.nan, 2.0])
        monitor = InvariantMonitor()
        found = monitor.check_round(algo, 0)
        assert [v.check for v in found] == ["finite_model"]
        assert "non-finite" in found[0].message
        assert not monitor.ok

    def test_simplex_violations(self):
        monitor = InvariantMonitor(checks=("simplex_weights",))
        algo = _healthy_stub()
        algo.current_weights = lambda: np.array([0.7, 0.6])  # sums to 1.3
        assert monitor.check_round(algo, 0)[0].check == "simplex_weights"
        algo.current_weights = lambda: np.array([-0.2, 1.2])  # negative mass
        assert "below simplex" in monitor.check_round(algo, 1)[0].message
        algo.current_weights = lambda: None  # minimization algorithms skip
        assert monitor.check_round(algo, 2) == []

    def test_comm_balance_catches_backwards_ledger(self):
        monitor = InvariantMonitor(checks=("comm_balance",))
        algo = _healthy_stub()
        ticks = [SimpleNamespace(cycles={"up": 5}, messages={}, floats={}),
                 SimpleNamespace(cycles={"up": 3}, messages={}, floats={})]
        algo.tracker = SimpleNamespace(snapshot=lambda: ticks.pop(0))
        assert monitor.check_round(algo, 0) == []  # baseline
        found = monitor.check_round(algo, 1)
        assert found and "went backwards" in found[0].message

    def test_strict_mode_raises(self):
        algo = _healthy_stub()
        algo.w = np.array([np.inf])
        monitor = InvariantMonitor(strict=True)
        with pytest.raises(InvariantViolationError, match="finite_model"):
            monitor.check_round(algo, 0)

    def test_unknown_check_and_duplicate_register_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant check"):
            InvariantMonitor(checks=("no_such_check",))
        monitor = InvariantMonitor()
        with pytest.raises(ValueError, match="already registered"):
            monitor.register("finite_model", lambda a, k: None)

    def test_custom_check_runs(self):
        monitor = InvariantMonitor(checks=())
        monitor.register("always_fails", lambda a, k: f"boom at {k}")
        found = monitor.check_round(_healthy_stub(), 7)
        assert found[0].check == "always_fails"
        assert found[0].round_index == 7
        assert set(DEFAULT_CHECKS) >= {"finite_model", "simplex_weights"}


# ---------------------------------------------------------------------------
# trace-report surfacing
# ---------------------------------------------------------------------------
class TestReportIntegration:
    def test_violations_and_recoveries_appear_in_report(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(str(path)) as tracer:
            tracer.event("invariant", check="simplex_weights", round=3,
                         message="mixing weights sum to 1.3")
            tracer.event("invariant", check="finite_model", round=4,
                         message="model w has 1 non-finite coordinate(s)")
            tracer.event("exec_retry", backend="process", client=7,
                         attempt=1, reason="worker_death")
            tracer.event("worker_respawn", backend="process",
                         reason="worker_death", resubmitted=1)
            tracer.event("chaos", site="worker_kill", occurrence=1, pid=123)
        report = analyze_trace(path)
        assert report.invariant_violations == 2
        assert report.invariant_totals == {"simplex_weights": 1,
                                           "finite_model": 1}
        assert (3, "simplex_weights",
                "mixing weights sum to 1.3") in report.invariant_records
        assert report.resilience_totals == {"exec_retry": 1,
                                            "worker_respawn": 1, "chaos": 1}
        assert report.recovery_actions == 2  # injected chaos doesn't count
        text = format_trace_report(report)
        assert "invariants:" in text and "simplex_weights" in text
        assert "resilience:" in text and "worker_respawn" in text

    def test_clean_trace_has_no_ledger_sections(self, fed, factory, tmp_path):
        path = tmp_path / "clean.jsonl"
        run(fed, factory, obs=Tracer(str(path), invariants=True))
        report = analyze_trace(path)
        assert report.invariant_violations == 0
        assert report.recovery_actions == 0
        assert "invariants:" not in format_trace_report(report)
