"""Tests for the HierMinimax core algorithm (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hierminimax import HierMinimax
from repro.ops.projections import project_capped_simplex

from tests.conftest import make_blob_fed


@pytest.fixture()
def setup(blob_fed, blob_factory):
    return blob_fed, blob_factory


class TestConstruction:
    def test_defaults(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, seed=0)
        assert algo.m_edges == fed.num_edges  # full participation default
        assert algo.slots_per_round == 4  # tau1=tau2=2
        np.testing.assert_allclose(algo.p, np.full(fed.num_edges, 1 / fed.num_edges))

    def test_validations(self, setup):
        fed, factory = setup
        with pytest.raises(ValueError):
            HierMinimax(fed, factory, tau1=0)
        with pytest.raises(ValueError):
            HierMinimax(fed, factory, eta_p=0.0)
        with pytest.raises(ValueError):
            HierMinimax(fed, factory, m_edges=fed.num_edges + 1)

    def test_flags(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory)
        assert algo.is_minimax and algo.uses_hierarchy
        assert algo.name == "hierminimax"


class TestRound:
    def test_round_updates_model_and_weights(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=0)
        w0, p0 = algo.w.copy(), algo.p.copy()
        algo.run_round(0)
        assert not np.array_equal(algo.w, w0)
        assert not np.array_equal(algo.p, p0)

    def test_weights_stay_on_simplex(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.2, seed=0)
        for k in range(10):
            algo.run_round(k)
            assert algo.p.sum() == pytest.approx(1.0)
            assert np.all(algo.p >= -1e-12)

    def test_capped_weight_constraint_respected(self, setup):
        fed, factory = setup
        algo = HierMinimax(
            fed, factory, eta_w=0.1, eta_p=1.0, seed=0,
            projection_p=lambda v: project_capped_simplex(v, 0.05, 0.6))
        for k in range(5):
            algo.run_round(k)
            assert algo.p.min() >= 0.05 - 1e-8
            assert algo.p.max() <= 0.6 + 1e-8

    def test_partial_participation(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, m_edges=2, eta_w=0.1, eta_p=0.05, seed=0)
        algo.run_round(0)  # must not raise
        assert algo.m_edges == 2

    def test_communication_accounting_exact(self, setup):
        """Per round: 2 edge-cloud cycles, m_E(τ2+1) client-edge cycles."""
        fed, factory = setup
        tau1, tau2, m_e = 2, 3, 2
        algo = HierMinimax(fed, factory, tau1=tau1, tau2=tau2, m_edges=m_e,
                           eta_w=0.1, eta_p=0.05, seed=0)
        K = 4
        for k in range(K):
            algo.run_round(k)
        snap = algo.tracker.snapshot()
        assert snap.cycles["edge_cloud"] == 2 * K
        assert snap.cycles["client_edge"] == K * m_e * (tau2 + 1)
        assert snap.edge_cloud_cycles == 2 * K

    def test_run_produces_history(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=0)
        result = algo.run(rounds=6, eval_every=2)
        assert result.rounds_run == 6
        assert result.slots_run == 24
        assert len(result.history) >= 3
        assert result.final_weights is not None
        # comm in history points must be non-decreasing
        cycles = [pt.comm.edge_cloud_cycles for pt in result.history.points]
        assert cycles == sorted(cycles)

    def test_deterministic_given_seed(self, setup):
        fed, factory = setup
        a = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=11)
        b = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=11)
        ra = a.run(rounds=4, eval_every=4)
        rb = b.run(rounds=4, eval_every=4)
        np.testing.assert_array_equal(ra.final_params, rb.final_params)
        np.testing.assert_array_equal(ra.final_weights, rb.final_weights)

    def test_different_seeds_differ(self, setup):
        fed, factory = setup
        a = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=1)
        b = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=2)
        ra = a.run(rounds=3, eval_every=3)
        rb = b.run(rounds=3, eval_every=3)
        assert not np.array_equal(ra.final_params, rb.final_params)

    def test_learning_on_easy_problem(self, setup):
        """Blobs are linearly separable; HierMinimax must reach high accuracy."""
        fed, factory = setup
        algo = HierMinimax(fed, factory, eta_w=0.2, eta_p=0.01, batch_size=4,
                           seed=0)
        result = algo.run(rounds=60, eval_every=20)
        assert result.history.final().record.average_accuracy > 0.9

    def test_weights_track_worst_edge(self):
        """With one edge made artificially hard, p must shift toward it."""
        from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset
        from repro.nn.models import make_model_factory

        gen = np.random.default_rng(0)
        edges = []
        for e in range(3):
            # Edge 2's two classes overlap heavily -> persistently higher loss.
            sep = 4.0 if e < 2 else 0.3
            centers = sep * np.array([[1.0, 1.0], [-1.0, -1.0]])
            def mk(n):
                y = np.repeat([0, 1], n // 2)
                X = centers[y] + gen.normal(size=(n, 2))
                return Dataset(X, y, 2)
            edges.append(EdgeAreaData([mk(30), mk(30)], mk(20)))
        fed = FederatedDataset(edges)
        factory = make_model_factory("logistic", 2, 2)
        algo = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, batch_size=5,
                           seed=0)
        algo.run(rounds=40, eval_every=40)
        assert np.argmax(algo.p) == 2
        assert algo.p[2] > 0.4


class TestResume:
    def test_run_twice_continues(self, setup):
        fed, factory = setup
        algo = HierMinimax(fed, factory, eta_w=0.1, eta_p=0.05, seed=0)
        r1 = algo.run(rounds=3, eval_every=3)
        r2 = algo.run(rounds=2, eval_every=2)
        assert r1.rounds_run == 3
        assert r2.rounds_run == 5
        assert r2.slots_run == 20
