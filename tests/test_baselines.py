"""Tests for the four baseline algorithms and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.drfa import DRFA
from repro.baselines.fedavg import FedAvg
from repro.baselines.hierfavg import HierFAVG
from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.baselines.stochastic_afl import StochasticAFL


class TestFedAvg:
    def test_flags_and_slots(self, blob_fed, blob_factory):
        algo = FedAvg(blob_fed, blob_factory, tau1=3, seed=0)
        assert not algo.is_minimax and not algo.uses_hierarchy
        assert algo.slots_per_round == 3
        assert algo.current_weights() is None

    def test_round_changes_model(self, blob_fed, blob_factory):
        algo = FedAvg(blob_fed, blob_factory, eta_w=0.1, seed=0)
        w0 = algo.w.copy()
        algo.run_round(0)
        assert not np.array_equal(algo.w, w0)

    def test_comm_accounting(self, blob_fed, blob_factory):
        algo = FedAvg(blob_fed, blob_factory, m_clients=4, eta_w=0.1, seed=0)
        K = 3
        for k in range(K):
            algo.run_round(k)
        snap = algo.tracker.snapshot()
        assert snap.cycles["client_cloud"] == K
        assert snap.cycles["client_edge"] == 0
        assert snap.messages["client_cloud:down"] == K * 4
        assert snap.messages["client_cloud:up"] == K * 4

    def test_learning(self, blob_fed, blob_factory):
        algo = FedAvg(blob_fed, blob_factory, eta_w=0.2, batch_size=4, seed=0)
        res = algo.run(rounds=60, eval_every=30)
        assert res.history.final().record.average_accuracy > 0.9

    def test_participation_validation(self, blob_fed, blob_factory):
        with pytest.raises(ValueError):
            FedAvg(blob_fed, blob_factory, m_clients=blob_fed.num_clients + 1)

    def test_uniform_vs_data_weighting_differs_with_uneven_shards(self):
        from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset
        from repro.nn.models import make_model_factory

        gen = np.random.default_rng(0)
        def mk(n, c):
            X = gen.normal(size=(n, 3)) + 2.0 * c
            return Dataset(X, np.full(n, c, dtype=np.int64), 2)
        edges = [EdgeAreaData([mk(4, 0), mk(40, 1)], mk(10, 0))]
        fed = FederatedDataset(edges)
        factory = make_model_factory("logistic", 3, 2)
        a = FedAvg(fed, factory, weight_by_data=True, eta_w=0.1, seed=0)
        b = FedAvg(fed, factory, weight_by_data=False, eta_w=0.1, seed=0)
        a.run_round(0)
        b.run_round(0)
        assert not np.array_equal(a.w, b.w)


class TestStochasticAFL:
    def test_flags_and_slots(self, blob_fed, blob_factory):
        algo = StochasticAFL(blob_fed, blob_factory, seed=0)
        assert algo.is_minimax and not algo.uses_hierarchy
        assert algo.slots_per_round == 1

    def test_weights_over_clients(self, blob_fed, blob_factory):
        algo = StochasticAFL(blob_fed, blob_factory, seed=0)
        assert algo.q.shape == (blob_fed.num_clients,)
        np.testing.assert_allclose(algo.q.sum(), 1.0)

    def test_round_updates_q_on_simplex(self, blob_fed, blob_factory):
        algo = StochasticAFL(blob_fed, blob_factory, eta_w=0.1, eta_q=0.1, seed=0)
        for k in range(5):
            algo.run_round(k)
            assert algo.q.sum() == pytest.approx(1.0)
            assert np.all(algo.q >= -1e-12)

    def test_comm_accounting(self, blob_fed, blob_factory):
        algo = StochasticAFL(blob_fed, blob_factory, m_clients=3, eta_w=0.1,
                             seed=0)
        algo.run_round(0)
        snap = algo.tracker.snapshot()
        assert snap.cycles["client_cloud"] == 2  # model phase + loss phase

    def test_learning(self, blob_fed, blob_factory):
        algo = StochasticAFL(blob_fed, blob_factory, eta_w=0.2, eta_q=0.01,
                             batch_size=4, seed=0)
        res = algo.run(rounds=150, eval_every=75)
        assert res.history.final().record.average_accuracy > 0.9


class TestDRFA:
    def test_flags_and_slots(self, blob_fed, blob_factory):
        algo = DRFA(blob_fed, blob_factory, tau1=3, seed=0)
        assert algo.is_minimax and not algo.uses_hierarchy
        assert algo.slots_per_round == 3

    def test_round_updates_model_and_q(self, blob_fed, blob_factory):
        algo = DRFA(blob_fed, blob_factory, eta_w=0.1, eta_q=0.05, seed=0)
        w0, q0 = algo.w.copy(), algo.q.copy()
        algo.run_round(0)
        assert not np.array_equal(algo.w, w0)
        assert not np.array_equal(algo.q, q0)

    def test_comm_accounting(self, blob_fed, blob_factory):
        algo = DRFA(blob_fed, blob_factory, m_clients=4, eta_w=0.1, seed=0)
        K = 2
        for k in range(K):
            algo.run_round(k)
        snap = algo.tracker.snapshot()
        assert snap.cycles["client_cloud"] == 2 * K
        # uploads carry model + checkpoint (2d floats per sampled client)
        d = algo.engine.num_parameters
        assert snap.floats["client_cloud:up"] == K * (4 * 2 * d + 4 * 1)

    def test_learning(self, blob_fed, blob_factory):
        algo = DRFA(blob_fed, blob_factory, eta_w=0.2, eta_q=0.01, batch_size=4,
                    seed=0)
        res = algo.run(rounds=80, eval_every=40)
        assert res.history.final().record.average_accuracy > 0.9


class TestHierFAVG:
    def test_flags_and_slots(self, blob_fed, blob_factory):
        algo = HierFAVG(blob_fed, blob_factory, tau1=2, tau2=3, seed=0)
        assert not algo.is_minimax and algo.uses_hierarchy
        assert algo.slots_per_round == 6

    def test_comm_accounting(self, blob_fed, blob_factory):
        algo = HierFAVG(blob_fed, blob_factory, tau1=2, tau2=2, m_edges=2,
                        eta_w=0.1, seed=0)
        K = 3
        for k in range(K):
            algo.run_round(k)
        snap = algo.tracker.snapshot()
        assert snap.cycles["edge_cloud"] == K  # no Phase 2
        assert snap.cycles["client_edge"] == K * 2 * 2  # m_e * tau2

    def test_learning(self, blob_fed, blob_factory):
        algo = HierFAVG(blob_fed, blob_factory, eta_w=0.2, batch_size=4, seed=0)
        res = algo.run(rounds=40, eval_every=20)
        assert res.history.final().record.average_accuracy > 0.9

    def test_no_weights(self, blob_fed, blob_factory):
        algo = HierFAVG(blob_fed, blob_factory, seed=0)
        assert algo.current_weights() is None


class TestRegistry:
    def test_all_names_construct_and_run(self, blob_fed, blob_factory):
        for name in ALGORITHMS:
            algo = make_algorithm(name, blob_fed, blob_factory, eta_w=0.1,
                                  eta_p=0.05, tau1=2, tau2=2, m_edges=2, seed=0)
            res = algo.run(rounds=2, eval_every=2)
            assert res.algorithm == name

    def test_unknown_name_raises(self, blob_fed, blob_factory):
        with pytest.raises(ValueError):
            make_algorithm("sgd", blob_fed, blob_factory)

    def test_eta_p_alias_for_two_layer(self, blob_fed, blob_factory):
        algo = make_algorithm("drfa", blob_fed, blob_factory, eta_p=0.123)
        assert algo.eta_q == pytest.approx(0.123)

    def test_m_edges_converted_to_clients(self, blob_fed, blob_factory):
        # blob_fed: 3 edges x 2 clients; m_edges=2 -> m_clients=4
        algo = make_algorithm("fedavg", blob_fed, blob_factory, m_edges=2)
        assert algo.m_clients == 4

    def test_typo_raises(self, blob_fed, blob_factory):
        with pytest.raises(TypeError):
            make_algorithm("fedavg", blob_fed, blob_factory, learning_rate=0.1)

    def test_irrelevant_params_dropped(self, blob_fed, blob_factory):
        # eta_p and tau2 are meaningless for fedavg but must not raise.
        algo = make_algorithm("fedavg", blob_fed, blob_factory, eta_p=0.1,
                              tau2=7, tau1=2)
        assert algo.tau1 == 2
