"""Supervised execution: dead workers, hung threads, bounded retries.

The supervision contract (``src/repro/exec``): pooled backends watch every
dispatch for worker death (pid set change), hangs (per-dispatch ``timeout_s``),
and recover by respawning the pool and re-executing the lost units — safe
because each unit is a pure function of its descriptor, so a retried unit
returns bit-identical outputs.  Retries are bounded by a
:class:`~repro.faults.plan.RetryPolicy`; recovery emits ``worker_respawn`` /
``exec_retry`` events and counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import ChaosCrash, ChaosPlan, chaos
from repro.core.hierminimax import HierMinimax
from repro.core.semiasync import SemiAsyncHierMinimax
from repro.exec import (
    TIMEOUT_ENV,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from repro.faults import RetryPolicy
from repro.nn.models import make_model_factory
from repro.obs import Tracer
from repro.simtime import SimTimer, make_cost_model

from .conftest import make_blob_fed


@pytest.fixture(scope="module")
def fed():
    return make_blob_fed(num_edges=3, clients_per_edge=2, seed=5)


@pytest.fixture(scope="module")
def factory():
    return make_model_factory("logistic", 5, 3)


def run(fed, factory, *, backend=None, obs=None, rounds=4, seed=3):
    algo = HierMinimax(fed, factory, tau1=2, tau2=2, m_edges=2,
                       eta_w=0.05, eta_p=2e-3, batch_size=4, seed=seed,
                       backend=backend, obs=obs)
    result = algo.run(rounds=rounds, eval_every=2)
    algo.close()
    return result


def assert_identical(ref, got):
    np.testing.assert_array_equal(ref.final_params, got.final_params)
    np.testing.assert_array_equal(ref.final_weights, got.final_weights)
    assert ref.history.as_dict() == got.history.as_dict()
    assert ref.comm.total_bytes == got.comm.total_bytes


# ---------------------------------------------------------------------------
# Construction-time validation and environment plumbing
# ---------------------------------------------------------------------------
class TestConfiguration:
    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            ThreadBackend(workers=2, timeout_s=0)
        with pytest.raises(ValueError):
            ProcessBackend(workers=2, timeout_s=-1.0)

    def test_rejects_non_policy_retry(self):
        with pytest.raises(TypeError):
            ThreadBackend(workers=2, retry=3)

    def test_make_backend_reads_timeout_env(self, monkeypatch):
        monkeypatch.setenv(TIMEOUT_ENV, "2.5")
        backend = make_backend("thread", workers=2)
        assert backend.timeout_s == 2.5
        backend.close()
        monkeypatch.delenv(TIMEOUT_ENV)
        backend = make_backend("process", workers=2)
        assert backend.timeout_s is None
        backend.close()


# ---------------------------------------------------------------------------
# ProcessBackend: SIGKILLed workers
# ---------------------------------------------------------------------------
class TestProcessSupervision:
    def test_worker_sigkill_recovers_bit_identically(self, fed, factory):
        ref = run(fed, factory)
        backend = ProcessBackend(workers=2)
        tracer = Tracer()
        try:
            with chaos(ChaosPlan(worker_kill=(1,), seed=0)) as injector:
                got = run(fed, factory, backend=backend, obs=tracer)
        finally:
            backend.close()
        assert injector.fired_sites() == ["worker_kill"]
        assert_identical(ref, got)
        counters = tracer.snapshot()["counters"]
        assert counters.get("worker_respawns_total", 0) >= 1

    def test_repeated_kills_within_budget_recover(self, fed, factory):
        ref = run(fed, factory)
        backend = ProcessBackend(workers=2)
        try:
            with chaos(ChaosPlan(worker_kill=(0, 2), seed=1)):
                got = run(fed, factory, backend=backend)
        finally:
            backend.close()
        assert_identical(ref, got)


# ---------------------------------------------------------------------------
# ThreadBackend: hung tasks and retry budgets
# ---------------------------------------------------------------------------
class TestThreadSupervision:
    def test_hang_retried_bit_identically(self, fed, factory):
        ref = run(fed, factory)
        backend = ThreadBackend(workers=2, timeout_s=1.0)
        tracer = Tracer()
        try:
            with chaos(ChaosPlan(thread_hang=(1,), hang_s=3.0,
                                 seed=0)) as injector:
                got = run(fed, factory, backend=backend, obs=tracer)
        finally:
            backend.close()
        assert injector.fired_sites() == ["thread_hang"]
        assert_identical(ref, got)
        counters = tracer.snapshot()["counters"]
        assert counters.get("exec_retries_total", 0) >= 1

    def test_retry_budget_exhaustion_raises(self, fed, factory):
        backend = ThreadBackend(workers=2, timeout_s=0.2,
                                retry=RetryPolicy(max_retries=0))
        try:
            # Every occurrence hangs, so the single attempt times out and
            # the zero-retry budget is immediately exhausted.
            with chaos(ChaosPlan(thread_hang=tuple(range(64)), hang_s=2.0,
                                 seed=0)):
                with pytest.raises(RuntimeError, match="retry budget"):
                    run(fed, factory, backend=backend)
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Semi-async in-flight buffer across an injected crash
# ---------------------------------------------------------------------------
class TestSemiAsyncCrashResume:
    @pytest.mark.parametrize("backend_name", ("serial", "process"))
    def test_crash_after_save_resumes_inflight(self, fed, factory, tmp_path,
                                               backend_name):
        model = make_cost_model("hetero,seed=1,device_sigma=0.5")

        def make():
            backend = (None if backend_name == "serial"
                       else make_backend(backend_name, workers=2))
            return SemiAsyncHierMinimax(
                fed, factory, batch_size=4, eta_w=0.1, eta_p=0.01,
                tau1=2, tau2=2, m_edges=2, seed=0, staleness=2,
                timing=SimTimer(model), backend=backend)

        full = make()
        ref = full.run(rounds=8, eval_every=4)
        full.close()
        path = tmp_path / f"semi-{backend_name}.ckpt.json"
        interrupted = make()
        with chaos(ChaosPlan(crash_after_save=(0,), seed=0)):
            with pytest.raises(ChaosCrash):
                interrupted.run(rounds=8, eval_every=4,
                                checkpoint_path=path, checkpoint_every=4)
        interrupted.close()
        resumed = make()
        done = resumed.load_checkpoint(path)
        assert done == 4
        result = resumed.run(rounds=8 - done, eval_every=4)
        resumed.close()
        np.testing.assert_array_equal(ref.final_params, result.final_params)
        assert result.sim_time_s == ref.sim_time_s
