"""Tests for repro.utils.logging and repro.utils.timers."""

from __future__ import annotations

import io
import time

import pytest

from repro.utils.logging import NullLogger, RunLogger
from repro.utils.timers import Timer, TimerBank


class TestNullLogger:
    def test_swallows_events(self):
        NullLogger()({"event": "round", "k": 1})  # must not raise


class TestRunLogger:
    def test_writes_line(self):
        buf = io.StringIO()
        RunLogger(stream=buf)({"event": "round", "acc": 0.5})
        text = buf.getvalue()
        assert "round" in text and "acc=0.5" in text

    def test_round_thinning(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf, every=3)
        for _ in range(7):
            log({"event": "round", "k": 1})
        assert buf.getvalue().count("round") == 3  # rounds 1, 4, 7

    def test_non_round_events_always_pass(self):
        buf = io.StringIO()
        log = RunLogger(stream=buf, every=100)
        log({"event": "done", "total": 1})
        assert "done" in buf.getvalue()

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            RunLogger(every=0)

    def test_float_formatting(self):
        buf = io.StringIO()
        RunLogger(stream=buf)({"event": "x", "v": 0.123456789})
        assert "0.123457" in buf.getvalue()


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert t.count == 2
        assert t.total >= 0.002

    def test_mean(self):
        t = Timer()
        assert t.mean == 0.0
        with t:
            pass
        assert t.mean == t.total


class TestTimerBank:
    def test_reuses_named_timer(self):
        bank = TimerBank()
        assert bank("train") is bank("train")

    def test_summary(self):
        bank = TimerBank()
        with bank("a"):
            pass
        summary = bank.summary()
        assert set(summary) == {"a"}
        assert summary["a"] >= 0.0
