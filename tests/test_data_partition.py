"""Tests for repro.data.partition: the heterogeneity machinery of §6."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import (
    federated_from_group_pools,
    partition_dirichlet,
    partition_iid,
    partition_one_class_per_edge,
    partition_similarity,
    split_evenly,
    stratified_test_subset,
)


def _pool(n_per_class=30, classes=5, d=4, seed=0):
    gen = np.random.default_rng(seed)
    y = np.repeat(np.arange(classes), n_per_class)
    X = gen.normal(size=(y.size, d))
    return Dataset(X, y, classes)


class TestSplitEvenly:
    def test_sizes(self):
        shards = split_evenly(_pool(), 4)
        sizes = [len(s) for s in shards]
        assert sum(sizes) == 150
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_too_many_parts(self):
        with pytest.raises(ValueError):
            split_evenly(_pool(n_per_class=1, classes=2), 3)

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            split_evenly(_pool(), 0)

    def test_shuffle_changes_assignment(self):
        pool = _pool()
        a = split_evenly(pool, 3)
        b = split_evenly(pool, 3, rng=np.random.default_rng(0))
        assert not np.array_equal(a[0].y, b[0].y)


class TestStratifiedTestSubset:
    def test_matches_distribution(self):
        pool = _pool(n_per_class=50)
        hist = np.array([10.0, 0, 0, 0, 10.0])
        out = stratified_test_subset(pool, hist, 40, np.random.default_rng(0))
        counts = out.class_counts()
        assert counts[0] == 20 and counts[4] == 20
        assert counts[1] == counts[2] == counts[3] == 0

    def test_caps_at_availability(self):
        pool = _pool(n_per_class=5)
        hist = np.array([1.0, 0, 0, 0, 0])
        out = stratified_test_subset(pool, hist, 50, np.random.default_rng(0))
        assert len(out) == 5

    def test_missing_class_raises(self):
        pool = _pool(n_per_class=5, classes=2)
        sub = pool.subset(np.nonzero(pool.y == 0)[0])  # only class 0 present
        with pytest.raises(ValueError):
            stratified_test_subset(sub, np.array([0.0, 1.0]), 4,
                                   np.random.default_rng(0))

    def test_validations(self):
        pool = _pool()
        with pytest.raises(ValueError):
            stratified_test_subset(pool, np.zeros(5), 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            stratified_test_subset(pool, np.ones(3), 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            stratified_test_subset(pool, np.ones(5), 0, np.random.default_rng(0))


class TestOneClassPerEdge:
    def test_each_edge_single_class(self):
        fed = partition_one_class_per_edge(
            _pool(), _pool(seed=1), num_edges=5, clients_per_edge=2,
            rng=np.random.default_rng(0))
        assert fed.num_edges == 5
        for e, edge in enumerate(fed.edges):
            labels = np.unique(edge.train_pool().y)
            np.testing.assert_array_equal(labels, [e])
            np.testing.assert_array_equal(np.unique(edge.test.y), [e])

    def test_round_robin_when_fewer_edges(self):
        fed = partition_one_class_per_edge(
            _pool(classes=5), _pool(classes=5, seed=1), num_edges=2,
            clients_per_edge=2, rng=np.random.default_rng(0))
        labels0 = set(np.unique(fed.edges[0].train_pool().y))
        labels1 = set(np.unique(fed.edges[1].train_pool().y))
        assert labels0 == {0, 2, 4}
        assert labels1 == {1, 3}

    def test_too_many_edges_raises(self):
        with pytest.raises(ValueError):
            partition_one_class_per_edge(
                _pool(classes=3), _pool(classes=3, seed=1), num_edges=4,
                clients_per_edge=1, rng=np.random.default_rng(0))

    def test_client_shards_cover_edge_data(self):
        fed = partition_one_class_per_edge(
            _pool(), _pool(seed=1), num_edges=5, clients_per_edge=3,
            rng=np.random.default_rng(0))
        edge = fed.edges[0]
        assert edge.train_size == 30  # all of class 0's train samples


class TestSimilarity:
    def test_full_similarity_is_iid(self):
        fed = partition_similarity(
            _pool(), _pool(seed=1), num_edges=5, clients_per_edge=2,
            similarity=1.0, rng=np.random.default_rng(0))
        # each edge should see (almost) all classes
        for edge in fed.edges:
            assert len(np.unique(edge.train_pool().y)) >= 4

    def test_zero_similarity_concentrates_labels(self):
        fed = partition_similarity(
            _pool(n_per_class=40), _pool(seed=1), num_edges=5, clients_per_edge=2,
            similarity=0.0, rng=np.random.default_rng(0))
        for edge in fed.edges:
            # sorted-by-label chunks: at most 2 distinct labels per edge
            assert len(np.unique(edge.train_pool().y)) <= 2

    def test_half_similarity_mixes(self):
        fed = partition_similarity(
            _pool(n_per_class=40), _pool(seed=1), num_edges=5, clients_per_edge=2,
            similarity=0.5, rng=np.random.default_rng(0))
        counts = fed.edges[0].train_pool().class_counts()
        # one dominant label from the sorted part plus iid sprinkling
        assert counts.max() > counts.sum() / 5
        assert np.count_nonzero(counts) >= 3

    def test_rejects_bad_similarity(self):
        with pytest.raises(ValueError):
            partition_similarity(_pool(), _pool(seed=1), num_edges=2,
                                 clients_per_edge=1, similarity=1.5,
                                 rng=np.random.default_rng(0))

    def test_partition_iid_alias(self):
        fed = partition_iid(_pool(), _pool(seed=1), num_edges=3,
                            clients_per_edge=2, rng=np.random.default_rng(0))
        assert fed.num_edges == 3

    def test_total_samples_conserved(self):
        pool = _pool()
        fed = partition_similarity(pool, _pool(seed=1), num_edges=5,
                                   clients_per_edge=2, similarity=0.5,
                                   rng=np.random.default_rng(0))
        assert sum(e.train_size for e in fed.edges) == len(pool)


class TestDirichlet:
    def test_basic(self):
        fed = partition_dirichlet(
            _pool(n_per_class=60), _pool(seed=1), num_edges=4, clients_per_edge=2,
            concentration=0.5, rng=np.random.default_rng(0))
        assert fed.num_edges == 4
        assert sum(e.train_size for e in fed.edges) == 300

    def test_low_concentration_skews(self):
        fed = partition_dirichlet(
            _pool(n_per_class=100), _pool(seed=1), num_edges=4, clients_per_edge=1,
            concentration=0.05, rng=np.random.default_rng(2))
        # at low concentration, each edge should be dominated by few classes
        for edge in fed.edges:
            counts = edge.train_pool().class_counts()
            assert counts.max() / counts.sum() > 0.4

    def test_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            partition_dirichlet(_pool(), _pool(seed=1), num_edges=2,
                                clients_per_edge=1, concentration=0.0,
                                rng=np.random.default_rng(0))


class TestGroupPools:
    def test_groups_become_edges(self):
        trains = [_pool(classes=2, seed=i) for i in range(3)]
        tests = [_pool(classes=2, seed=10 + i) for i in range(3)]
        fed = federated_from_group_pools(trains, tests, clients_per_edge=2,
                                         rng=np.random.default_rng(0))
        assert fed.num_edges == 3
        assert fed.clients_per_edge() == [2, 2, 2]

    def test_small_group_gets_fewer_clients(self):
        tiny = _pool(n_per_class=1, classes=2)  # 2 samples
        trains = [tiny, _pool(classes=2)]
        tests = [_pool(classes=2, seed=5), _pool(classes=2, seed=6)]
        fed = federated_from_group_pools(trains, tests, clients_per_edge=5,
                                         rng=np.random.default_rng(0))
        assert fed.edges[0].num_clients == 2
        assert fed.edges[1].num_clients == 5

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            federated_from_group_pools([_pool()], [], clients_per_edge=1,
                                       rng=np.random.default_rng(0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            federated_from_group_pools([], [], clients_per_edge=1,
                                       rng=np.random.default_rng(0))
