"""Tests for repro.nn.layers and repro.nn.init."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.init import fan_in_out, kaiming_uniform_, normal_, xavier_uniform_, zeros_
from repro.nn.layers import Identity, Linear, ReLU, Tanh
from repro.nn.network import NeuralNetwork


class TestInitializers:
    def test_fan_in_out_matrix(self):
        assert fan_in_out((784, 300)) == (784, 300)

    def test_fan_in_out_vector(self):
        assert fan_in_out((10,)) == (10, 10)

    def test_fan_in_out_empty_raises(self):
        with pytest.raises(ValueError):
            fan_in_out(())

    def test_zeros(self):
        a = np.ones(5)
        zeros_(a)
        np.testing.assert_array_equal(a, np.zeros(5))

    def test_normal_std(self):
        a = np.empty(20000)
        normal_(a, np.random.default_rng(0), std=0.1)
        assert abs(a.std() - 0.1) < 0.005

    def test_normal_rejects_negative_std(self):
        with pytest.raises(ValueError):
            normal_(np.empty(3), np.random.default_rng(0), std=-1.0)

    def test_xavier_bound(self):
        a = np.empty((100, 50))
        xavier_uniform_(a, np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert np.all(np.abs(a) <= bound)

    def test_kaiming_bound(self):
        a = np.empty((64, 32))
        kaiming_uniform_(a, np.random.default_rng(0))
        assert np.all(np.abs(a) <= np.sqrt(6.0 / 64))


class TestLinear:
    def _bound_linear(self, in_f=3, out_f=2, bias=True):
        net = NeuralNetwork([Linear(in_f, out_f, bias=bias)], input_dim=in_f, rng=0)
        return net.layers[0], net

    def test_forward_shape(self):
        layer, _ = self._bound_linear()
        assert layer.forward(np.zeros((5, 3))).shape == (5, 2)

    def test_forward_is_affine(self):
        layer, _ = self._bound_linear()
        layer.W[:] = np.arange(6).reshape(3, 2)
        layer.b[:] = [1.0, -1.0]
        x = np.array([[1.0, 0.0, 2.0]])
        np.testing.assert_allclose(layer.forward(x), x @ layer.W + layer.b)

    def test_no_bias(self):
        layer, _ = self._bound_linear(bias=False)
        assert layer.b is None
        out = layer.forward(np.zeros((2, 3)))
        np.testing.assert_array_equal(out, np.zeros((2, 2)))

    def test_backward_accumulates_grads(self):
        layer, net = self._bound_linear()
        x = np.random.default_rng(0).normal(size=(4, 3))
        layer.forward(x, train=True)
        g = np.ones((4, 2))
        dx = layer.backward(g)
        np.testing.assert_allclose(layer.gW, x.T @ g)
        np.testing.assert_allclose(layer.gb, g.sum(axis=0))
        np.testing.assert_allclose(dx, g @ layer.W.T)

    def test_backward_before_forward_raises(self):
        layer, _ = self._bound_linear()
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_eval_forward_does_not_cache(self):
        layer, _ = self._bound_linear()
        layer.forward(np.zeros((1, 3)), train=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_wrong_input_dim_raises(self):
        layer, _ = self._bound_linear()
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 4)))

    def test_unbound_use_raises(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).forward(np.zeros((1, 2)))

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError):
            Linear(2, 2, weight_init="bogus")

    def test_output_dim_checks_input(self):
        with pytest.raises(ValueError):
            Linear(3, 2).output_dim(5)


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 2.0]]), train=True)
        np.testing.assert_array_equal(layer.backward(np.array([[5.0, 5.0]])),
                                      [[0.0, 5.0]])

    def test_relu_backward_without_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))

    def test_tanh_backward(self):
        layer = Tanh()
        x = np.array([[0.5, -0.3]])
        out = layer.forward(x, train=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, 1.0 - out**2)

    def test_identity_passthrough(self):
        layer = Identity()
        x = np.array([[1.0, 2.0]])
        assert layer.forward(x) is x
        assert layer.backward(x) is x
