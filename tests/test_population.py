"""Virtual populations: spec purity, eager-wrap equivalence, cohort lifecycle.

The contracts under test (DESIGN.md §"Virtual populations"):

* every derived artifact — client shards, RNG streams, edge test sets, eval
  cohorts — is a pure function of ``(spec.seed, entity id)``, so cohorts are
  bit-identical across backends, visitation orders, and checkpoint resumes;
* wrapping an eager dataset as a degenerate population changes nothing, bit
  for bit, on any algorithm or backend;
* per-round memory is O(sampled cohort): materialized clients are flushed to
  the :class:`~repro.population.ClientStateStore` and discarded after every
  round, and a re-materialized client continues its minibatch stream exactly
  where it left off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_algorithm
from repro.core.hierminimax import HierMinimax
from repro.membership import ChurnPlan
from repro.multilayer import MultiLevelHierMinimax
from repro.nn.models import make_model_factory
from repro.population import (
    ClientStateStore,
    EagerPopulation,
    PopulationSpec,
    ShardIntegrityError,
    VirtualPopulation,
    as_population,
    resolve_population,
    shard_file_path,
)

SPEC = PopulationSpec.parse("clients=60,edges=6,samples=8,test=12,seed=3")


def spec_factory(spec=SPEC):
    return make_model_factory("logistic", spec.input_dim, spec.num_classes)


# ---------------------------------------------------------------------------
# PopulationSpec: parsing, validation, derivation laws
# ---------------------------------------------------------------------------
class TestPopulationSpec:
    def test_parse_round_trip(self):
        spec = PopulationSpec.parse(
            "clients=1000,edges=10,samples=16,test=32,partition=iid,"
            "eval_edges=4,seed=9")
        assert spec.num_clients == 1000
        assert spec.clients_per_edge == 100
        assert spec.partition == "iid"
        assert PopulationSpec.from_dict(spec.to_dict()) == spec

    def test_parse_rejects_bad_input(self):
        with pytest.raises(ValueError):
            PopulationSpec.parse("clients=7,edges=3")  # not divisible
        with pytest.raises(ValueError):
            PopulationSpec.parse("edges=3,clients=9,nonsense=1")
        with pytest.raises(ValueError):
            PopulationSpec(num_edges=2, clients_per_edge=2, family="no_such")
        with pytest.raises(ValueError):
            PopulationSpec(num_edges=2, clients_per_edge=2,
                           partition="no_such")

    def test_image_family_resolves_input_dim(self):
        from repro.data.synthetic_images import _FAMILIES

        spec = PopulationSpec.parse("edges=2,clients=4,family=mnist_like")
        assert spec.input_dim == _FAMILIES["mnist_like"].side ** 2
        assert spec.input_dim != spec.dim
        sided = PopulationSpec.parse(
            "edges=2,clients=4,family=mnist_like,side=8")
        assert sided.input_dim == 64

    def test_one_class_partition_labels(self):
        # Edge e's shards only carry classes from edge_classes(e), matching
        # the eager one-class-per-edge partition law.
        for e in range(SPEC.num_edges):
            allowed = set(SPEC.edge_classes(e))
            for cid in SPEC.edge_client_ids(e):
                assert set(np.unique(SPEC.client_shard(cid).y)) <= allowed

    def test_client_shard_is_pure(self):
        a, b = SPEC.client_shard(17), SPEC.client_shard(17)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)
        other = SPEC.client_shard(18)
        assert not np.array_equal(a.X, other.X)

    def test_edge_test_is_pure(self):
        a, b = SPEC.edge_test(2), SPEC.edge_test(2)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)

    def test_eval_cohort_law(self):
        spec = SPEC.with_eval_edges(3)
        first = spec.eval_edge_ids(4)
        assert np.array_equal(first, spec.eval_edge_ids(4))
        assert len(first) == 3 and len(set(first.tolist())) == 3
        assert SPEC.eval_edge_ids(4) is None  # eval_edges unset -> full pass
        assert spec.with_eval_edges(99).eval_edge_ids(4) is None


# ---------------------------------------------------------------------------
# ClientStateStore: sharding, round-trips
# ---------------------------------------------------------------------------
class TestClientStateStore:
    def test_put_get_discard(self):
        store = ClientStateStore(num_shards=4)
        store.put(11, {"cursor": 3})
        store.put(11, {"x": 1}, namespace="meta")
        assert store.get(11) == {"cursor": 3}
        assert store.get(11, namespace="meta") == {"x": 1}
        assert 11 in store and len(store) == 1
        store.discard(11)
        assert 11 not in store and store.get(11) is None

    def test_state_dict_round_trip_and_resharding(self):
        store = ClientStateStore(num_shards=8)
        for cid in (0, 5, 13, 999_983):
            store.put(cid, {"cursor": cid % 7})
        # Restoring into a differently-sharded store re-homes every entry.
        other = ClientStateStore(num_shards=3)
        other.load_state_dict(store.state_dict())
        assert list(other.client_ids()) == list(store.client_ids())
        for cid in store.client_ids():
            assert other.get(cid) == store.get(cid)
        assert sum(other.shard_sizes()) == len(store)

    def test_contains_is_false_for_non_castable_ids(self):
        store = ClientStateStore(num_shards=4)
        store.put(3, {"cursor": 1})
        assert "abc" not in store
        assert None not in store
        assert (1, 2) not in store
        assert "3" in store  # int-castable strings still resolve

    def test_load_state_dict_rejects_malformed_input(self):
        store = ClientStateStore(num_shards=4)
        store.put(7, {"cursor": 2})
        cases = [
            "not a mapping",
            {"shards": "not a mapping"},
            {"shards": {"0": ["not", "a", "mapping"]}},
            {"shards": {"0": {"abc": {"cursor": 0}}}},
            {"shards": {"0": {"-5": {"cursor": 0}}}},
            {"shards": {"0": {"1": "not a mapping"}}},
        ]
        for bad in cases:
            with pytest.raises(ValueError):
                store.load_state_dict(bad)
            # Validation failures never clobber the current content.
            assert store.get(7) == {"cursor": 2}


# ---------------------------------------------------------------------------
# Durable shard files: checksums, rotation, corruption recovery
# ---------------------------------------------------------------------------
class TestShardFiles:
    def _store(self, n=10):
        store = ClientStateStore(num_shards=4)
        for cid in range(n):
            store.put(cid, {"cursor": cid, "tag": f"c{cid}"})
        return store

    def test_save_load_round_trip(self, tmp_path):
        store = self._store()
        manifest = store.save_shards(tmp_path)
        fresh = ClientStateStore(num_shards=4)
        corrupted = fresh.load_shards(tmp_path, manifest)
        assert corrupted == []
        assert list(fresh.client_ids()) == list(store.client_ids())
        for cid in store.client_ids():
            assert fresh.get(cid) == store.get(cid)

    def test_rotation_keeps_previous_generation(self, tmp_path):
        store = self._store()
        first = store.save_shards(tmp_path)
        store.put(0, {"cursor": 999})
        store.save_shards(tmp_path)
        assert list(tmp_path.glob("*.prev"))
        # The older manifest still resolves — its generation lives under
        # the .prev names after the rotation.
        fresh = ClientStateStore(num_shards=4)
        assert fresh.load_shards(tmp_path, first) == []
        assert fresh.get(0) == {"cursor": 0, "tag": "c0"}

    def test_corruption_raises_by_default(self, tmp_path):
        store = self._store()
        manifest = store.save_shards(tmp_path)
        victim = shard_file_path(tmp_path, 1)
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        victim.write_bytes(bytes(blob))
        fresh = ClientStateStore(num_shards=4)
        with pytest.raises(ShardIntegrityError):
            fresh.load_shards(tmp_path, manifest)

    def test_corruption_quarantined_under_rederive(self, tmp_path):
        store = self._store()
        manifest = store.save_shards(tmp_path)
        victim = shard_file_path(tmp_path, 1)
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x10
        victim.write_bytes(bytes(blob))
        fresh = ClientStateStore(num_shards=4)
        corrupted = fresh.load_shards(tmp_path, manifest,
                                      on_corrupt="rederive")
        assert corrupted == [1]
        assert victim.with_name(victim.name + ".quarantine").exists()
        # Clients homed on the damaged shard are dropped (rederived later);
        # every other client loads intact — never a silent bad load.
        for cid in store.client_ids():
            if cid % 4 == 1:
                assert fresh.get(cid) is None
            else:
                assert fresh.get(cid) == store.get(cid)

    def test_missing_file_counts_as_corruption(self, tmp_path):
        store = self._store()
        manifest = store.save_shards(tmp_path)
        shard_file_path(tmp_path, 2).unlink()
        fresh = ClientStateStore(num_shards=4)
        with pytest.raises(ShardIntegrityError):
            fresh.load_shards(tmp_path, manifest)


# ---------------------------------------------------------------------------
# Cohort determinism and lifecycle
# ---------------------------------------------------------------------------
class TestVirtualCohorts:
    def test_visitation_order_independence(self):
        # Materializing clients in any order yields bit-identical shards and
        # first minibatches — derivation is per-client, not sequential.
        batches = {}
        for order in ([3, 41, 8], [8, 3, 41]):
            pop = VirtualPopulation(SPEC)
            pop.build_edges(batch_size=4,
                            rng_factory=_rng_factory(seed=SPEC.seed))
            for cid in order:
                client = pop.client(cid)
                draw = client.sampler.next_batch()
                if cid in batches:
                    prev_X, prev_y = batches[cid]
                    assert np.array_equal(prev_X, draw[0])
                    assert np.array_equal(prev_y, draw[1])
                else:
                    batches[cid] = draw

    @pytest.mark.parametrize("backend", ["serial", "thread", "process",
                                         "vectorized"])
    def test_run_deterministic_across_backends(self, backend):
        result = _run_virtual(backend=backend)
        reference = _run_virtual(backend="serial")
        assert np.array_equal(result.final_params, reference.final_params)
        assert np.array_equal(result.final_weights, reference.final_weights)

    def test_cohort_discarded_after_round(self):
        algo = HierMinimax(SPEC, spec_factory(), tau1=2, tau2=2, m_edges=2,
                           batch_size=4, seed=0)
        algo.run(rounds=3)
        pop = algo.population
        assert pop.virtual
        assert not pop._live  # end_round cleared the cohort
        cohort_bound = 2 * SPEC.clients_per_edge  # m_edges sampled for train
        assert pop.max_live_clients <= SPEC.num_clients
        assert pop.max_live_clients >= cohort_bound
        assert pop.clients_materialized_total >= pop.max_live_clients
        # Only touched clients persist state; never the whole population.
        assert 0 < len(pop.store) <= pop.clients_materialized_total

    def test_sampler_cursor_round_trip(self):
        # Interrupting a client (flush + discard + re-materialize) must not
        # perturb its minibatch stream.
        continuous = VirtualPopulation(SPEC)
        continuous.build_edges(batch_size=4,
                               rng_factory=_rng_factory(seed=SPEC.seed))
        client = continuous.client(7)
        expected = [client.sampler.next_batch() for _ in range(5)]

        interrupted = VirtualPopulation(SPEC)
        interrupted.build_edges(batch_size=4,
                                rng_factory=_rng_factory(seed=SPEC.seed))
        got = [interrupted.client(7).sampler.next_batch() for _ in range(2)]
        interrupted.end_round(0)  # flush cursors, discard the cohort
        assert not interrupted._live and 7 in interrupted.store
        revived = interrupted.client(7)
        got += [revived.sampler.next_batch() for _ in range(3)]
        for (ex_X, ex_y), (gx, gy) in zip(expected, got):
            assert np.array_equal(ex_X, gx) and np.array_equal(ex_y, gy)

    def test_store_round_trip_across_populations(self):
        # A state_dict written by one population resumes another bit-exactly
        # (the checkpoint path, minus JSON).
        first = VirtualPopulation(SPEC)
        first.build_edges(batch_size=4,
                          rng_factory=_rng_factory(seed=SPEC.seed))
        client = first.client(22)
        for _ in range(3):
            client.sampler.next_batch()
        state = first.state_dict()

        fresh = VirtualPopulation(SPEC)
        fresh.build_edges(batch_size=4,
                          rng_factory=_rng_factory(seed=SPEC.seed))
        fresh.load_state_dict(state)
        resumed_draw = fresh.client(22).sampler.next_batch()
        expected_draw = client.sampler.next_batch()
        assert np.array_equal(expected_draw[0], resumed_draw[0])
        assert np.array_equal(expected_draw[1], resumed_draw[1])

    def test_load_state_dict_rejects_spec_mismatch(self):
        pop = VirtualPopulation(SPEC)
        other = VirtualPopulation(SPEC.with_eval_edges(2))
        with pytest.raises(ValueError, match="different PopulationSpec"):
            other.load_state_dict(pop.state_dict())

    def test_bind_rejects_mismatched_rebind(self):
        pop = VirtualPopulation(SPEC)
        pop.build_edges(batch_size=4, rng_factory=_rng_factory(seed=0))
        with pytest.raises(ValueError):
            pop.build_edges(batch_size=8, rng_factory=_rng_factory(seed=0))


# ---------------------------------------------------------------------------
# Checkpoint / resume (including across a failover boundary)
# ---------------------------------------------------------------------------
class TestVirtualCheckpointResume:
    def _algo(self, churn=None):
        return HierMinimax(SPEC, spec_factory(), tau1=2, tau2=2, m_edges=2,
                           batch_size=4, seed=0, churn=churn)

    @pytest.mark.parametrize("churn", [
        None,
        "arrive=0.1,depart=0.05,edge_mttf=3,edge_mttr=2,seed=1",
    ], ids=["plain", "churn_failover"])
    def test_resume_is_bit_identical(self, tmp_path, churn):
        plan = ChurnPlan.parse(churn) if churn else None
        uninterrupted = self._algo(plan).run(rounds=6)

        path = tmp_path / "virtual.ckpt.json"
        killed = self._algo(plan)
        killed.run(rounds=3)
        killed.save_checkpoint(path)

        resumed = self._algo(plan)
        assert resumed.load_checkpoint(path) == 3
        result = resumed.run(rounds=3)
        assert np.array_equal(result.final_params,
                              uninterrupted.final_params)
        assert np.array_equal(result.final_weights,
                              uninterrupted.final_weights)


# ---------------------------------------------------------------------------
# Eager-wrap equivalence: the degenerate population changes nothing
# ---------------------------------------------------------------------------
EAGER_ALGOS = ["hierminimax", "semiasync_hierminimax", "hierfavg", "fedavg",
               "stochastic_afl", "drfa"]


class TestEagerEquivalence:
    @pytest.mark.parametrize("name", EAGER_ALGOS)
    def test_wrapped_dataset_bit_identical(self, name, tiny_image_fed,
                                           tiny_logistic_factory):
        kwargs = dict(batch_size=8, seed=0, tau1=2, tau2=2, m_edges=3)
        plain = make_algorithm(name, tiny_image_fed, tiny_logistic_factory,
                               **kwargs).run(rounds=3)
        wrapped = make_algorithm(name, as_population(tiny_image_fed),
                                 tiny_logistic_factory, **kwargs).run(rounds=3)
        assert np.array_equal(plain.final_params, wrapped.final_params)
        if plain.final_weights is not None:
            assert np.array_equal(plain.final_weights, wrapped.final_weights)

    @pytest.mark.parametrize("backend", ["thread", "process", "vectorized"])
    def test_wrapped_dataset_bit_identical_backends(self, backend,
                                                    tiny_image_fed,
                                                    tiny_logistic_factory):
        kwargs = dict(tau1=2, tau2=2, m_edges=3, batch_size=8, seed=0,
                      backend=backend)
        plain = HierMinimax(tiny_image_fed, tiny_logistic_factory,
                            **kwargs).run(rounds=2)
        wrapped = HierMinimax(None, tiny_logistic_factory,
                              population=as_population(tiny_image_fed),
                              **kwargs).run(rounds=2)
        assert np.array_equal(plain.final_params, wrapped.final_params)
        assert np.array_equal(plain.final_weights, wrapped.final_weights)

    def test_multilevel_wrapped_bit_identical(self, tiny_image_fed,
                                              tiny_logistic_factory):
        kwargs = dict(batch_size=8, seed=0, m_top=3)
        plain = MultiLevelHierMinimax(tiny_image_fed, tiny_logistic_factory,
                                      **kwargs).run(rounds=2)
        wrapped = MultiLevelHierMinimax(
            None, tiny_logistic_factory,
            population=as_population(tiny_image_fed), **kwargs).run(rounds=2)
        assert np.array_equal(plain.final_params, wrapped.final_params)

    def test_resolve_population_contract(self, tiny_image_fed):
        pop = resolve_population(None, tiny_image_fed)
        assert isinstance(pop, EagerPopulation)
        assert pop.dataset is tiny_image_fed
        # Spec (or spec string) in the dataset slot resolves to virtual.
        assert resolve_population(None, SPEC).virtual
        assert resolve_population("clients=4,edges=2", None).virtual
        with pytest.raises(ValueError):
            resolve_population(SPEC, tiny_image_fed)


# ---------------------------------------------------------------------------
# Sampled evaluation cohorts
# ---------------------------------------------------------------------------
class TestEvaluationCohort:
    def test_per_edge_cohort_slices_full_pass(self, tiny_image_fed,
                                              tiny_logistic_factory):
        from repro.metrics.evaluation import evaluate_per_edge

        engine = tiny_logistic_factory()
        w = engine.get_params()
        full_acc, full_loss = evaluate_per_edge(engine, w, tiny_image_fed)
        ids = [7, 1, 4]
        acc, loss = evaluate_per_edge(engine, w, tiny_image_fed, edge_ids=ids)
        assert np.array_equal(acc, full_acc[ids])
        assert np.array_equal(loss, full_loss[ids])

    def test_record_flags_cohort(self, tiny_image_fed, tiny_logistic_factory):
        from repro.metrics.evaluation import evaluate_record

        engine = tiny_logistic_factory()
        w = engine.get_params()
        record = evaluate_record(engine, w, tiny_image_fed, edge_ids=[2, 5])
        assert record.extra["eval_edges"] == [2, 5]
        assert record.per_edge_accuracy.size == 2
        full = evaluate_record(engine, w, tiny_image_fed)
        assert "eval_edges" not in full.extra

    def test_eager_eval_cohort_trains(self, tiny_image_fed,
                                      tiny_logistic_factory):
        pop = as_population(tiny_image_fed, eval_edges=3)
        algo = HierMinimax(None, tiny_logistic_factory, population=pop,
                           tau1=2, tau2=2, m_edges=3, batch_size=8, seed=0)
        result = algo.run(rounds=2)
        record = result.history.final().record
        assert len(record.extra["eval_edges"]) == 3
        assert record.per_edge_accuracy.size == 3


# ---------------------------------------------------------------------------
# Memory gauge (satellite: repro.obs.PeakMemoryTracker)
# ---------------------------------------------------------------------------
class TestMemoryGauge:
    def test_tracker_observes_allocations(self):
        from repro.obs import PeakMemoryTracker

        tracker = PeakMemoryTracker()
        try:
            tracker.reset_peak()
            blob = np.ones(300_000)  # ~2.4 MB
            assert tracker.peak_bytes() >= blob.nbytes
            assert tracker.current_bytes() >= 0
        finally:
            tracker.close()

    def test_tracer_track_memory_emits_gauge(self, tmp_path):
        from repro.obs import Tracer

        obs = Tracer(tmp_path / "mem.trace.jsonl", track_memory=True)
        algo = HierMinimax(SPEC, spec_factory(), tau1=2, tau2=2, m_edges=2,
                           batch_size=4, seed=0, obs=obs)
        algo.run(rounds=2)
        gauges = obs.snapshot()["gauges"]
        obs.close()
        assert gauges.get("mem_peak_bytes", 0) > 0

    def test_tracer_default_has_no_tracker(self, tmp_path):
        from repro.obs import Tracer

        obs = Tracer(tmp_path / "plain.trace.jsonl")
        assert obs.mem_tracker is None
        obs.close()


def _rng_factory(seed: int):
    from repro.utils.rng import RngFactory

    return RngFactory(seed)


def _run_virtual(backend: str):
    algo = HierMinimax(SPEC, spec_factory(), tau1=2, tau2=2, m_edges=2,
                       batch_size=4, seed=0, backend=backend)
    try:
        return algo.run(rounds=3)
    finally:
        algo.backend.close()
