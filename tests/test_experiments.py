"""Tests for the experiment harness: presets, runner, figure/table builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import build_figure, format_figure_report
from repro.experiments.presets import (
    FIGURE_ALGORITHMS,
    TABLE2_DATASETS,
    fig3_preset,
    fig4_preset,
    table2_preset,
)
from repro.experiments.runner import (
    build_preset_dataset,
    build_preset_model,
    monotone_envelope,
    run_experiment,
)
from repro.experiments.tables import format_table2, table2_row


class TestPresets:
    def test_fig3_paper_matches_section6(self):
        p = fig3_preset("paper")
        assert p.num_edges == 10 and p.clients_per_edge == 3
        assert p.m_edges == 5
        assert p.tau1 == p.tau2 == 2
        assert p.batch_size == 1
        assert p.eta_w == pytest.approx(1e-3)
        assert p.eta_p == pytest.approx(1e-3)
        assert p.worst_target == pytest.approx(0.80)

    def test_fig4_paper_matches_section6(self):
        p = fig4_preset("paper")
        assert p.m_edges == 2
        assert p.model == "mlp" and p.hidden == (300, 100)
        assert p.batch_size == 8
        assert p.eta_p == pytest.approx(1e-4)
        assert p.worst_target == pytest.approx(0.50)

    def test_all_scales_build(self):
        for scale in ("paper", "small", "tiny"):
            fig3_preset(scale)
            fig4_preset(scale)
            for ds in TABLE2_DATASETS:
                table2_preset(ds, scale)

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            fig3_preset("huge")
        with pytest.raises(ValueError):
            table2_preset("adult", "huge")

    def test_unknown_table2_dataset_raises(self):
        with pytest.raises(ValueError):
            table2_preset("cifar", "tiny")

    def test_rounds_for_slot_budget(self):
        p = fig3_preset("tiny")
        assert p.rounds_for(4) == p.slots // 4
        assert p.rounds_for(1) == p.slots
        with pytest.raises(ValueError):
            p.rounds_for(0)

    def test_eval_every(self):
        p = fig3_preset("tiny")
        assert p.eval_every_for(4) >= 1

    def test_table2_roster_is_hierarchical_pair(self):
        p = table2_preset("mnist", "tiny")
        assert p.algorithms == ("hierfavg", "hierminimax")

    def test_figure_roster(self):
        assert fig3_preset("tiny").algorithms == FIGURE_ALGORITHMS


class TestRunner:
    def test_dataset_and_model_builders(self):
        p = fig3_preset("tiny")
        fed = build_preset_dataset(p, seed=0)
        assert fed.num_edges == 10
        factory = build_preset_model(p, fed)
        net = factory(0)
        assert net.output_dim == fed.num_classes

    def test_run_experiment_pairs_algorithms(self):
        p = fig3_preset("tiny").with_overrides(slots=80, eval_points=2)
        out = run_experiment(p, seed=0, algorithms=("hierfavg", "hierminimax"))
        assert set(out.results) == {"hierfavg", "hierminimax"}
        assert set(out.timings) == {"hierfavg", "hierminimax"}
        # equal slot budgets
        assert out.results["hierfavg"].slots_run == \
            out.results["hierminimax"].slots_run

    def test_run_experiment_deterministic(self):
        p = fig3_preset("tiny").with_overrides(slots=40, eval_points=1)
        a = run_experiment(p, seed=1, algorithms=("hierminimax",))
        b = run_experiment(p, seed=1, algorithms=("hierminimax",))
        np.testing.assert_array_equal(a.results["hierminimax"].final_params,
                                      b.results["hierminimax"].final_params)

    def test_monotone_envelope(self):
        y = np.array([0.1, 0.3, 0.2, 0.5, 0.4])
        np.testing.assert_array_equal(monotone_envelope(y),
                                      [0.1, 0.3, 0.3, 0.5, 0.5])

    def test_monotone_envelope_rejects_matrix(self):
        with pytest.raises(ValueError):
            monotone_envelope(np.zeros((2, 2)))


class TestFigureBuilder:
    @pytest.fixture(scope="class")
    def figure(self):
        preset = fig3_preset("tiny").with_overrides(
            slots=160, eval_points=4, worst_target=0.2,
            algorithms=("drfa", "hierminimax"))
        return build_figure(preset, seeds=(0, 1))

    def test_series_present(self, figure):
        assert set(figure.series) == {"drfa", "hierminimax"}
        s = figure.series["hierminimax"]
        assert s.comm_rounds.shape == s.worst_accuracy.shape
        assert s.comm_rounds[0] <= s.comm_rounds[-1]

    def test_accuracies_in_range(self, figure):
        for s in figure.series.values():
            assert np.all((s.average_accuracy >= 0) & (s.average_accuracy <= 1))
            assert np.all((s.worst_accuracy >= 0) & (s.worst_accuracy <= 1))

    def test_report_renders(self, figure):
        text = format_figure_report(figure)
        assert "hierminimax" in text
        assert "rounds to target" in text

    def test_reduction_vs(self, figure):
        red = figure.reduction_vs("drfa")
        assert red is None or -5.0 < red < 1.0


class TestTableBuilder:
    def test_adult_row(self):
        rows = table2_row("adult", scale="tiny", seed=0)
        assert len(rows) == 2
        assert {r.method for r in rows} == {"hierfavg", "hierminimax"}
        for r in rows:
            assert 0.0 <= r.average <= 1.0
            assert 0.0 <= r.worst <= 1.0
            assert r.variance_x1e4 >= 0.0

    def test_format(self):
        rows = table2_row("adult", scale="tiny", seed=0)
        text = format_table2(rows)
        assert "adult" in text and "hierminimax" in text
