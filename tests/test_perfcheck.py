"""Tests for the tracked perf trajectory (repro.obs.perfcheck + CLI).

The contract: benches distil runs into normalized ``BENCH_<name>.json``
metric files, a committed baseline lives at the repo root, and
``python -m repro perf-check`` gates with per-kind tolerances — counters and
bytes exactly, deterministic floats at 1e-9 relative, ratios one-sided, and
wall-clock seconds never.
"""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.obs.perfcheck import (
    DEFAULT_RATIO_TOL,
    KINDS,
    compare_bench,
    format_perfcheck,
    load_bench,
    normalize_metrics,
    write_bench,
)

BASELINE = {
    "bench": "demo",
    "metrics": {
        "sgd_steps": {"value": 18000, "kind": "counter"},
        "edge_cloud_bytes": {"value": 112691064, "kind": "bytes"},
        "final_worst_accuracy": {"value": 0.8125, "kind": "exact"},
        "vectorized_speedup": {"value": 3.1, "kind": "ratio"},
        "wall_s": {"value": 12.5, "kind": "seconds"},
    },
}


def variant(**overrides):
    doc = json.loads(json.dumps(BASELINE))
    for name, value in overrides.items():
        doc["metrics"][name]["value"] = value
    return doc


# ------------------------------------------------------------- normalization
class TestNormalize:
    def test_bare_values_default_to_exact(self):
        out = normalize_metrics({"x": 3})
        assert out == {"x": {"value": 3.0, "kind": "exact"}}

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown kind"):
            normalize_metrics({"x": {"value": 1, "kind": "cuonter"}})
        assert "counter" in KINDS

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "BENCH_demo.json"
        write_bench(path, "demo", BASELINE["metrics"],
                    context={"scale": "tiny"})
        doc = load_bench(path)
        assert doc["bench"] == "demo"
        assert doc["metrics"] == normalize_metrics(BASELINE["metrics"])
        assert doc["context"] == {"scale": "tiny"}
        assert path.read_text().endswith("\n")

    def test_load_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text('{"not": "a bench"}')
        with pytest.raises(ValueError, match="no 'metrics' key"):
            load_bench(path)


# ------------------------------------------------------------------- gating
class TestCompare:
    def check(self, current, name):
        result = compare_bench(BASELINE, current)
        return next(c for c in result.checks if c.name == name)

    def test_identical_passes(self):
        result = compare_bench(BASELINE, BASELINE)
        assert result.ok and not result.failures
        assert {c.status for c in result.checks} == {"ok", "info"}

    def test_counter_regression_fails(self):
        """The demonstrated-failure acceptance case: a drifted counter means
        the run did different work, and the check must gate on it."""
        result = compare_bench(BASELINE, variant(sgd_steps=17000))
        assert not result.ok
        (fail,) = result.failures
        assert fail.name == "sgd_steps" and fail.status == "fail"
        assert "drift -1000" in fail.detail

    def test_bytes_must_match_exactly(self):
        assert self.check(variant(edge_cloud_bytes=112691065),
                          "edge_cloud_bytes").status == "fail"

    def test_exact_tolerates_1e9_relative(self):
        ok = self.check(variant(final_worst_accuracy=0.8125 * (1 + 1e-10)),
                        "final_worst_accuracy")
        assert ok.status == "ok"
        bad = self.check(variant(final_worst_accuracy=0.8126),
                         "final_worst_accuracy")
        assert bad.status == "fail" and "relative error" in bad.detail

    def test_ratio_is_one_sided(self):
        floor = (1 - DEFAULT_RATIO_TOL) * 3.1
        assert self.check(variant(vectorized_speedup=9.0),
                          "vectorized_speedup").status == "ok"  # faster: fine
        assert self.check(variant(vectorized_speedup=floor + 0.01),
                          "vectorized_speedup").status == "ok"
        collapsed = self.check(variant(vectorized_speedup=floor - 0.01),
                               "vectorized_speedup")
        assert collapsed.status == "fail" and "below" in collapsed.detail

    def test_ratio_tol_configurable(self):
        result = compare_bench(BASELINE, variant(vectorized_speedup=3.0),
                               ratio_tol=0.01)
        assert [c.name for c in result.failures] == ["vectorized_speedup"]

    def test_seconds_never_gate(self):
        row = self.check(variant(wall_s=1e6), "wall_s")
        assert row.status == "info" and not row.gating

    def test_missing_metric_gates(self):
        current = json.loads(json.dumps(BASELINE))
        del current["metrics"]["sgd_steps"]
        result = compare_bench(BASELINE, current)
        assert not result.ok
        assert result.failures[0].status == "missing"

    def test_new_metric_passes_with_note(self):
        current = json.loads(json.dumps(BASELINE))
        current["metrics"]["brand_new"] = {"value": 1.0, "kind": "counter"}
        result = compare_bench(BASELINE, current)
        assert result.ok
        row = next(c for c in result.checks if c.name == "brand_new")
        assert row.status == "new" and "--update" in row.detail

    def test_kind_change_fails(self):
        current = json.loads(json.dumps(BASELINE))
        current["metrics"]["sgd_steps"]["kind"] = "ratio"
        result = compare_bench(BASELINE, current)
        assert any(c.name == "sgd_steps" and "kind changed" in c.detail
                   for c in result.failures)

    def test_format_shows_verdict_and_rows(self):
        text = format_perfcheck(compare_bench(BASELINE,
                                              variant(sgd_steps=17000)))
        assert "FAIL" in text and "[ok  ]" in text and "[info]" in text
        ok_text = format_perfcheck(compare_bench(BASELINE, BASELINE))
        assert "PASS" in ok_text


# ----------------------------------------------------------------------- CLI
class TestPerfCheckCLI:
    @pytest.fixture()
    def dirs(self, tmp_path):
        base = tmp_path / "root"
        results = tmp_path / "results"
        base.mkdir(), results.mkdir()
        write_bench(base / "BENCH_demo.json", "demo", BASELINE["metrics"])
        write_bench(results / "BENCH_demo.json", "demo", BASELINE["metrics"])
        return base, results

    def run(self, base, results, *extra):
        return cli.main(["perf-check", "--baseline-dir", str(base),
                         "--results-dir", str(results), *extra])

    def test_pass_exits_zero(self, dirs, capsys):
        base, results = dirs
        assert self.run(base, results) == 0
        assert "PASS" in capsys.readouterr().out

    def test_regression_exits_one(self, dirs, capsys):
        base, results = dirs
        write_bench(results / "BENCH_demo.json", "demo",
                    variant(sgd_steps=17000)["metrics"])
        assert self.run(base, results) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_result_exits_two(self, dirs, capsys):
        base, results = dirs
        (results / "BENCH_demo.json").unlink()
        assert self.run(base, results) == 2
        assert "run the benchmarks first" in capsys.readouterr().err

    def test_no_baselines_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert self.run(empty, empty) == 2
        assert "no BENCH_*.json baselines" in capsys.readouterr().err

    def test_update_promotes_results(self, dirs):
        base, results = dirs
        fresh = variant(sgd_steps=19000)
        write_bench(results / "BENCH_demo.json", "demo", fresh["metrics"])
        assert self.run(base, results, "--update") == 0
        promoted = load_bench(base / "BENCH_demo.json")
        assert promoted["metrics"]["sgd_steps"]["value"] == 19000.0
        assert self.run(base, results) == 0  # and the gate now passes

    def test_bench_selector(self, dirs, capsys):
        base, results = dirs
        assert self.run(base, results, "--bench", "demo") == 0
        assert self.run(base, results, "--bench", "nonexistent") == 2

    def test_repo_baseline_is_checkable(self, capsys):
        """The committed BENCH_substrate.json must stay a valid baseline:
        comparing it against itself passes (guards hand-edits)."""
        doc = load_bench("BENCH_substrate.json")
        assert doc["bench"] == "substrate"
        assert compare_bench(doc, doc).ok
        kinds = {m["kind"] for m in doc["metrics"].values()}
        assert "counter" in kinds and "ratio" in kinds
