"""Tests for repro.defense: attack models, robust aggregators, and policies.

The two load-bearing guarantees:

* the **null path is bit-identical**: no attack plus the reference mean
  aggregator (installed explicitly or absent) reproduces the pre-defense
  arithmetic exactly, on every execution backend, and
* under a ≥20% model-poisoning attack the robust aggregators keep training
  near the clean trajectory while the plain mean demonstrably does not
  (the bench grid in ``benchmarks/bench_byzantine.py`` measures this at
  scale; here small paired runs assert the ordering).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from tests.conftest import make_blob_fed
from repro.core.hierminimax import HierMinimax
from repro.defense import (
    AttackPlan,
    CoordinateMedian,
    DefensePolicy,
    Krum,
    NormClip,
    TrimmedMean,
    WeightedMean,
    apply_label_flip,
    resolve_defense,
)
from repro.defense.aggregators import AGGREGATORS, resolve_aggregator
from repro.defense.policy import clip_loss_reports, robust_combine
from repro.exec import resolve_backend
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Tracer, analyze_trace, format_trace_report


def make_hmm(fed, factory, **kw):
    return HierMinimax(fed, factory, batch_size=4, eta_w=0.1, eta_p=0.05,
                       tau1=2, tau2=2, m_edges=2, seed=0, **kw)


def all_aggregators():
    return [resolve_aggregator(name) for name in sorted(AGGREGATORS)]


def random_vectors(n=9, d=17, seed=0):
    gen = np.random.default_rng(seed)
    return [gen.normal(size=d) for _ in range(n)]


# --------------------------------------------------------------- attack plan
class TestAttackPlan:
    def test_null_plan(self):
        assert AttackPlan.none().is_null
        assert not AttackPlan(attack="sign_flip", fraction=0.2).is_null
        # An attack name with no victims is still null.
        assert AttackPlan(attack="sign_flip").is_null

    def test_parse_round_trip(self):
        plan = AttackPlan.parse("sign_flip,fraction=0.25,scale=5,seed=3,"
                                "start_round=10,colluding=1")
        assert plan.attack == "sign_flip"
        assert plan.fraction == 0.25
        assert plan.effective_scale == 5.0
        assert plan.seed == 3
        assert plan.start_round == 10
        assert plan.colluding

    def test_parse_explicit_clients(self):
        plan = AttackPlan.parse("gauss,clients=0|3|7")
        assert plan.clients == (0, 3, 7)
        assert plan.is_byzantine(3) and not plan.is_byzantine(4)

    def test_rejects_unknown_attack_and_bad_fraction(self):
        with pytest.raises(ValueError):
            AttackPlan(attack="zombie", fraction=0.1)
        with pytest.raises(ValueError):
            AttackPlan(attack="sign_flip", fraction=1.5)

    def test_roster_is_deterministic_and_seed_dependent(self):
        plan = AttackPlan(attack="sign_flip", fraction=0.3, seed=0)
        assert plan.roster(200) == plan.roster(200)
        other = AttackPlan(attack="sign_flip", fraction=0.3, seed=1)
        assert plan.roster(200) != other.roster(200)
        frac = len(plan.roster(1000)) / 1000
        assert 0.2 < frac < 0.4

    def test_start_round_gates_activity(self):
        plan = AttackPlan(attack="sign_flip", clients=(2,), start_round=5)
        assert not plan.active(4, 2)
        assert plan.active(5, 2)
        assert not plan.active(5, 3)

    def test_colluding_attackers_send_identical_noise(self):
        base = dict(attack="gauss", clients=(0, 1), scale=1.0, seed=0)
        collusive = AttackPlan(colluding=True, **base)
        independent = AttackPlan(colluding=False, **base)
        payload = np.zeros(8)
        a = collusive.tamper_model(3, 0, payload.copy(), None)
        b = collusive.tamper_model(3, 1, payload.copy(), None)
        np.testing.assert_array_equal(a, b)
        c = independent.tamper_model(3, 0, payload.copy(), None)
        d = independent.tamper_model(3, 1, payload.copy(), None)
        assert not np.array_equal(c, d)

    def test_sign_flip_reflects_through_reference(self):
        plan = AttackPlan(attack="sign_flip", clients=(0,), scale=1.0)
        ref = np.full(4, 2.0)
        payload = np.full(4, 3.0)
        out = plan.tamper_model(0, 0, payload, ref)
        np.testing.assert_allclose(out, np.full(4, 1.0))  # ref - (p - ref)

    def test_loss_inflation_scales_scalars(self):
        plan = AttackPlan(attack="loss_inflation", clients=(0,), scale=10.0)
        assert plan.tamper_loss(0, 0, 1.5) == pytest.approx(15.0)

    def test_label_flip_poisons_only_byzantine_shards(self, blob_fed):
        plan = AttackPlan(attack="label_flip", clients=(0,))
        poisoned = apply_label_flip(blob_fed, plan)
        flipped = poisoned.edges[0].clients[0]
        original = blob_fed.edges[0].clients[0]
        c = blob_fed.num_classes
        np.testing.assert_array_equal(flipped.y, (c - 1) - original.y)
        # Honest shards are shared, not copied.
        assert poisoned.edges[0].clients[1] is blob_fed.edges[0].clients[1]
        assert poisoned.edges[1] is not None
        # Null attack: the same dataset object comes back.
        assert apply_label_flip(blob_fed, AttackPlan.none()) is blob_fed


# -------------------------------------------------- aggregator property tests
class TestAggregatorProperties:
    @pytest.mark.parametrize("agg", all_aggregators(),
                             ids=lambda a: a.name)
    def test_permutation_invariance(self, agg):
        vectors = random_vectors()
        ref = np.zeros(vectors[0].size)
        base = agg.combine(vectors, ref=ref).value
        perm = list(reversed(vectors))
        out = agg.combine(perm, ref=ref).value
        np.testing.assert_allclose(out, base, atol=1e-10)

    @pytest.mark.parametrize("agg", all_aggregators(),
                             ids=lambda a: a.name)
    def test_identical_inputs_agree_with_mean(self, agg):
        v = np.linspace(-1.0, 1.0, 13)
        out = agg.combine([v.copy() for _ in range(7)], ref=np.zeros(13))
        np.testing.assert_allclose(out.value, v, atol=1e-12)

    @pytest.mark.parametrize("agg", all_aggregators(),
                             ids=lambda a: a.name)
    def test_honest_inputs_stay_near_mean(self, agg):
        vectors = random_vectors(n=11, seed=3)
        mean = np.mean(vectors, axis=0)
        out = agg.combine(vectors, ref=mean).value
        spread = max(np.linalg.norm(v - mean) for v in vectors)
        assert np.linalg.norm(out - mean) <= spread

    def test_median_breakdown_point(self):
        # floor((n-1)/2) attackers at +1e6 cannot drag the median out of the
        # honest range; one more can.
        honest = [np.full(5, float(i)) for i in range(6)]   # values 0..5
        f = (11 - 1) // 2
        attackers = [np.full(5, 1e6) for _ in range(f)]
        value = CoordinateMedian().combine(honest + attackers).value
        assert value.max() <= 5.0
        broken = CoordinateMedian().combine(
            honest + attackers + [np.full(5, 1e6)]).value
        assert broken.max() > 5.0

    def test_trimmed_mean_tolerates_its_trim_fraction(self):
        honest = [np.full(3, float(i)) for i in range(8)]
        attackers = [np.full(3, -1e9), np.full(3, 1e9)]
        agg = TrimmedMean(trim=0.2)  # k = floor(0.2*10) = 2
        value = agg.combine(honest + attackers).value
        assert 0.0 <= value.min() and value.max() <= 7.0

    def test_trimmed_mean_rejects_persistent_outlier(self):
        vectors = random_vectors(n=10, seed=5)
        vectors.append(np.full(vectors[0].size, 1e6))
        out = TrimmedMean(trim=0.2).combine(vectors)
        assert 10 in out.rejected

    def test_krum_excludes_far_cluster(self):
        gen = np.random.default_rng(0)
        honest = [gen.normal(size=6) for _ in range(8)]
        attackers = [100.0 + gen.normal(size=6) for _ in range(3)]
        out = Krum(m=3).combine(honest + attackers)
        assert set(out.rejected) >= {8, 9, 10}
        assert np.linalg.norm(out.value) < 10.0

    def test_krum_small_cohort_falls_back_to_mean(self):
        vectors = [np.ones(4), 3 * np.ones(4)]
        out = Krum().combine(vectors)
        np.testing.assert_allclose(out.value, 2 * np.ones(4))

    def test_norm_clip_bounds_magnitude(self):
        ref = np.zeros(4)
        honest = [np.ones(4) for _ in range(5)]
        attacker = np.full(4, 1e6)
        out = NormClip(factor=2.0).combine(honest + [attacker], ref=ref)
        assert 5 in out.clipped
        assert np.linalg.norm(out.value) <= 2.0 * np.linalg.norm(np.ones(4)) + 1e-9

    def test_weighted_mean_respects_weights(self):
        out = WeightedMean().combine([np.zeros(3), np.ones(3)],
                                     weights=[1.0, 3.0])
        np.testing.assert_allclose(out.value, np.full(3, 0.75))

    def test_resolve_aggregator_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            resolve_aggregator("bogus")


# -------------------------------------------------------------------- policy
class TestDefensePolicy:
    def test_single_name_installs_both_tiers_and_loss_clip(self):
        policy = resolve_defense("trimmed_mean")
        assert policy.edge.name == "trimmed_mean"
        assert policy.cloud.name == "trimmed_mean"
        assert policy.loss_clip is not None
        assert policy.tier("edge") is policy.edge

    def test_mean_policy_is_inactive_at_both_tiers(self):
        policy = resolve_defense("mean")
        assert policy.tier("edge") is None
        assert policy.tier("cloud") is None
        assert policy.loss_clip is None

    def test_per_tier_spec(self):
        policy = resolve_defense("edge=median,cloud=krum,loss_clip=2.5")
        assert policy.edge.name == "median"
        assert policy.cloud.name == "krum"
        assert policy.loss_clip == 2.5

    def test_trim_parameter_flows_through(self):
        policy = resolve_defense("trimmed_mean,trim=0.3,loss_clip=none")
        assert policy.edge.trim == 0.3
        assert policy.loss_clip is None

    def test_rejects_bad_loss_clip_and_keys(self):
        with pytest.raises(ValueError):
            DefensePolicy(loss_clip=0.5)
        with pytest.raises(ValueError, match="unknown defense spec key"):
            resolve_defense("trimmed_mean,gremlins=1")

    def test_clip_loss_reports(self):
        losses = {0: 1.0, 1: 1.2, 2: 0.8, 3: 60.0}
        clipped, ids, cap = clip_loss_reports(losses, 3.0)
        assert ids == [3]
        assert clipped[3] == pytest.approx(cap)
        assert clipped[0] == 1.0
        # Fewer than three reports: identity (same object, no new arithmetic).
        small = {0: 1.0, 1: 50.0}
        assert clip_loss_reports(small, 3.0)[0] is small

    def test_robust_combine_reports_suspects(self):
        inj = FaultInjector(FaultPlan())
        entries = [("client:0", 1.0, np.zeros(3)),
                   ("client:1", 1.0, np.zeros(3) + 0.1),
                   ("client:2", 1.0, np.full(3, 1e6))]
        value = robust_combine(TrimmedMean(trim=0.34), entries,
                               faults=inj, round_index=7)
        assert np.all(np.isfinite(value))
        assert inj.suspicion.get("client:2", 0) >= 1
        assert robust_combine(TrimmedMean(), [], faults=inj) is None


# -------------------------------------------------------- injector tampering
class TestInjectorAttacks:
    def plan(self, **kw):
        kw.setdefault("attack", "sign_flip")
        kw.setdefault("clients", (1,))
        kw.setdefault("scale", 1.0)
        return FaultPlan(byzantine=AttackPlan(**kw))

    def test_byzantine_upload_is_tampered_honest_passes(self):
        inj = FaultInjector(self.plan())
        ref = np.zeros(4)
        payload = np.ones(4)
        (honest,) = inj.receive(0, "client_edge", "client:0", payload.copy(),
                                ref=ref)
        np.testing.assert_array_equal(honest, payload)
        (evil,) = inj.receive(0, "client_edge", "client:1", payload.copy(),
                              ref=ref)
        np.testing.assert_allclose(evil, -payload)

    def test_edge_senders_are_never_byzantine(self):
        inj = FaultInjector(self.plan(clients=(1,)))
        payload = np.ones(4)
        (out,) = inj.receive(0, "edge_cloud", "edge:1", payload.copy(),
                             ref=np.zeros(4))
        np.testing.assert_array_equal(out, payload)

    def test_loss_inflation_targets_scalar_reports(self):
        inj = FaultInjector(self.plan(attack="loss_inflation", scale=10.0))
        (loss,) = inj.receive(0, "client_edge", "client:1", 2.0)
        assert loss == pytest.approx(20.0)
        (honest,) = inj.receive(0, "client_edge", "client:0", 2.0)
        assert honest == 2.0

    def test_attack_events_and_counters_flow_through_obs(self):
        obs = Tracer(None)
        inj = FaultInjector(self.plan(), obs=obs)
        inj.receive(0, "client_edge", "client:1", np.ones(3), ref=np.zeros(3))
        inj.suspect(0, "client:1", action="rejected", aggregator="krum")
        counters = obs.snapshot()["counters"]
        assert counters["byzantine_attacks_total"] == 1
        assert counters["byzantine_filtered_total"] == 1
        assert inj.suspicion == {"client:1": 1}


# ------------------------------------------------- bit-identity regressions
class TestNullPathBitIdentity:
    def history_points(self, result):
        return [(p.round_index, p.record.worst_accuracy,
                 p.record.average_accuracy)
                for p in result.history.points]

    def test_mean_defense_is_bit_identical_to_no_defense(self, blob_fed,
                                                         blob_factory):
        base = make_hmm(blob_fed, blob_factory).run(rounds=6, eval_every=3)
        for defense in ("mean", DefensePolicy(), None,
                        "mean,loss_clip=none"):
            res = make_hmm(blob_fed, blob_factory, defense=defense).run(
                rounds=6, eval_every=3)
            np.testing.assert_array_equal(res.final_params, base.final_params)
            np.testing.assert_array_equal(res.final_weights,
                                          base.final_weights)
            assert self.history_points(res) == self.history_points(base)

    def test_null_attack_plan_is_bit_identical(self, blob_fed, blob_factory):
        base = make_hmm(blob_fed, blob_factory).run(rounds=6, eval_every=3)
        plan = FaultPlan(byzantine=AttackPlan.none())
        res = make_hmm(blob_fed, blob_factory, faults=plan).run(
            rounds=6, eval_every=3)
        np.testing.assert_array_equal(res.final_params, base.final_params)

    @pytest.mark.parametrize("backend_name",
                             ["serial", "thread", "process", "vectorized"])
    def test_null_attack_mean_identical_on_every_backend(
            self, blob_fed, blob_factory, backend_name):
        base = make_hmm(blob_fed, blob_factory).run(rounds=4, eval_every=4)
        backend = resolve_backend(backend_name, 2)
        try:
            res = make_hmm(blob_fed, blob_factory, defense="mean",
                           faults=FaultPlan(byzantine=AttackPlan.none()),
                           backend=backend).run(rounds=4, eval_every=4)
        finally:
            backend.close()
        np.testing.assert_array_equal(res.final_params, base.final_params)
        np.testing.assert_array_equal(res.final_weights, base.final_weights)

    @pytest.mark.parametrize("backend_name",
                             ["serial", "thread", "process", "vectorized"])
    def test_robust_aggregation_identical_across_backends(
            self, blob_fed, blob_factory, backend_name):
        plan = FaultPlan(byzantine=AttackPlan(attack="sign_flip",
                                              fraction=0.3, seed=1))
        serial = make_hmm(blob_fed, blob_factory, faults=plan,
                          defense="trimmed_mean,trim=0.34").run(
            rounds=4, eval_every=4)
        backend = resolve_backend(backend_name, 2)
        try:
            res = make_hmm(blob_fed, blob_factory, faults=plan,
                           defense="trimmed_mean,trim=0.34",
                           backend=backend).run(rounds=4, eval_every=4)
        finally:
            backend.close()
        np.testing.assert_array_equal(res.final_params, serial.final_params)


# ------------------------------------------------------ end-to-end recovery
class TestAttackAndRecovery:
    def test_sign_flip_hurts_mean_but_not_trimmed_mean(self):
        fed = make_blob_fed(num_edges=4, clients_per_edge=4, n_per_client=16,
                            seed=1)
        from repro.nn.models import make_model_factory
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)

        def final_worst(faults=None, defense=None):
            algo = HierMinimax(fed, factory, batch_size=4, eta_w=0.1,
                               eta_p=0.05, tau1=2, tau2=2, m_edges=4, seed=0,
                               faults=faults, defense=defense)
            return algo.run(rounds=60,
                            eval_every=60).history.final().record

        # One attacker per 4-client edge (client ids are global-sequential):
        # 25% byzantine overall, and within every edge cohort the trimmed
        # mean's breakdown point holds.
        plan = FaultPlan(byzantine=AttackPlan(attack="sign_flip",
                                              clients=(0, 4, 8, 12),
                                              scale=10.0))
        clean = final_worst()
        attacked = final_worst(faults=plan)
        defended = final_worst(faults=plan, defense="trimmed_mean,trim=0.3")
        assert clean.worst_accuracy - attacked.worst_accuracy > 0.1
        assert clean.worst_accuracy - defended.worst_accuracy < 0.05

    def test_defense_metrics_and_suspicion(self):
        # Four clients per edge: a cohort wide enough for the trimmed mean to
        # reject (blob_fed's 2-client cohorts have no trimming headroom).
        fed = make_blob_fed(num_edges=3, clients_per_edge=4, n_per_client=12,
                            seed=1)
        from repro.nn.models import make_model_factory
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        obs = Tracer(None)
        plan = FaultPlan(byzantine=AttackPlan(attack="sign_flip",
                                              clients=(0, 4, 8), scale=10.0))
        algo = make_hmm(fed, factory, faults=plan,
                        defense="trimmed_mean,trim=0.3", obs=obs)
        algo.run(rounds=5, eval_every=5)
        counters = obs.snapshot()["counters"]
        assert counters.get("byzantine_attacks_total", 0) > 0
        assert counters.get("byzantine_filtered_total", 0) > 0
        assert algo.faults.suspicion

    def test_byzantine_ledger_in_trace_report(self, tmp_path):
        fed = make_blob_fed(num_edges=3, clients_per_edge=4, n_per_client=12,
                            seed=1)
        from repro.nn.models import make_model_factory
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        path = tmp_path / "byz.trace.jsonl"
        plan = FaultPlan(byzantine=AttackPlan(attack="sign_flip",
                                              clients=(0, 4, 8), scale=10.0))
        with Tracer(str(path)) as obs:
            make_hmm(fed, factory, faults=plan,
                     defense="trimmed_mean,trim=0.3", obs=obs).run(
                rounds=5, eval_every=5)
        report = analyze_trace(path)
        assert report.attacks_injected > 0
        assert report.attacks_filtered > 0
        assert report.byzantine_by_round
        text = format_trace_report(report)
        assert "byzantine:" in text
        assert "attacked" in text

    def test_clean_trace_has_no_byzantine_section(self, blob_fed,
                                                  blob_factory, tmp_path):
        path = tmp_path / "clean.trace.jsonl"
        with Tracer(str(path)) as obs:
            make_hmm(blob_fed, blob_factory, obs=obs).run(rounds=2,
                                                          eval_every=2)
        report = analyze_trace(path)
        assert not report.attack_totals
        assert "byzantine:" not in format_trace_report(report)

    def test_loss_clip_damps_inflated_minimax_weights(self, blob_fed,
                                                      blob_factory):
        plan = FaultPlan(byzantine=AttackPlan(attack="loss_inflation",
                                              clients=(0, 1), scale=50.0,
                                              seed=0))

        def build(**kw):
            # m_edges=3 so phase 2 collects all three edge reports — the clip
            # needs at least three values for a meaningful median.
            return HierMinimax(blob_fed, blob_factory, batch_size=4,
                               eta_w=0.1, eta_p=0.05, tau1=2, tau2=2,
                               m_edges=3, seed=0, faults=plan, **kw)

        # One round keeps the comparison deterministic: clients 0 and 1 sit in
        # edge 0, so its inflated report yanks p[0] upward in the unclipped
        # run, while the capped report takes a strictly smaller ascent step.
        hot = build()
        hot.run(rounds=1, eval_every=1)
        damped = build(defense="edge=mean,cloud=mean,loss_clip=2.0")
        damped.run(rounds=1, eval_every=1)
        uniform = 1.0 / blob_fed.num_edges
        assert hot.p[0] - uniform > 0.1
        assert damped.p[0] < hot.p[0]
        assert damped.faults.suspicion  # loss_clipped actions were recorded


# ----------------------------------------------------- multilayer + baselines
class TestDefenseAcrossAlgorithms:
    @pytest.mark.parametrize("name", ["fedavg", "stochastic_afl", "drfa",
                                      "hierfavg", "hierminimax"])
    def test_registry_builds_with_defense_and_mean_is_identical(
            self, blob_fed, blob_factory, name):
        from repro.baselines.registry import make_algorithm

        def build(**kw):
            return make_algorithm(name, blob_fed, blob_factory, batch_size=4,
                                  eta_w=0.1, eta_p=0.05, tau1=2, tau2=2,
                                  m_edges=2, seed=0, **kw)

        base = build().run(rounds=4, eval_every=4)
        mean = build(defense="mean").run(rounds=4, eval_every=4)
        np.testing.assert_array_equal(mean.final_params, base.final_params)
        robust = build(defense="median").run(rounds=4, eval_every=4)
        assert np.all(np.isfinite(robust.final_params))

    def test_multilayer_defense_runs_and_filters(self, blob_fed, blob_factory):
        from repro.multilayer import MultiLevelHierMinimax

        obs = Tracer(None)
        plan = FaultPlan(byzantine=AttackPlan(attack="gauss", fraction=0.5,
                                              scale=50.0, seed=0))
        algo = MultiLevelHierMinimax(blob_fed, blob_factory, batch_size=4,
                                     eta_w=0.1, eta_p=0.05, seed=0,
                                     faults=plan, defense="median", obs=obs)
        res = algo.run(rounds=4, eval_every=4)
        assert np.all(np.isfinite(res.final_params))
        counters = obs.snapshot()["counters"]
        assert counters.get("byzantine_attacks_total", 0) > 0

    def test_multilayer_mean_defense_bit_identical(self, blob_fed,
                                                   blob_factory):
        from repro.multilayer import MultiLevelHierMinimax

        def build(**kw):
            return MultiLevelHierMinimax(blob_fed, blob_factory, batch_size=4,
                                         eta_w=0.1, eta_p=0.05, seed=0, **kw)

        base = build().run(rounds=4, eval_every=4)
        mean = build(defense="mean").run(rounds=4, eval_every=4)
        np.testing.assert_array_equal(mean.final_params, base.final_params)

    def test_run_experiment_threads_attack_and_defense(self, tmp_path):
        from repro.experiments.presets import fig3_preset
        from repro.experiments.runner import run_experiment

        preset = fig3_preset(scale="tiny").with_overrides(
            slots=64, eval_points=1, algorithms=("hierminimax",))
        out = run_experiment(preset, seed=0,
                             attack="sign_flip,fraction=0.3,seed=1",
                             defense="trimmed_mean,trim=0.34")
        res = out.results["hierminimax"]
        assert np.all(np.isfinite(res.final_params))
