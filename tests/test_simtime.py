"""Simulated-time subsystem: cost models, the virtual clock, and integration.

The load-bearing guarantees:

* cost draws are pure functions of ``(seed, entity)`` — order-independent and
  identical across processes, which makes makespans deterministic across all
  four execution backends and across checkpoint/resume;
* with the default :class:`NullCostModel`, every algorithm's history is
  bit-identical to a run without any ``timing=`` at all;
* the semi-asynchronous variant with ``staleness=0`` reproduces the
  synchronous trajectory *and* makespan exactly, and under a heterogeneous
  cost model with a persistent straggler it reaches the end of training in
  strictly less simulated time;
* nothing under :mod:`repro.simtime` or :mod:`repro.sim` ever consults a wall
  clock (lint test) — the virtual clock must be replayable.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.core.hierminimax import HierMinimax
from repro.core.semiasync import SemiAsyncHierMinimax
from repro.exec import resolve_backend
from repro.faults import FaultPlan
from repro.metrics.history import TrainingHistory
from repro.simtime import (
    HeterogeneousCostModel,
    NULL_TIMING,
    NullCostModel,
    SimTimer,
    make_cost_model,
    resolve_timing,
)

from .conftest import make_blob_fed

COST_SPEC = "hetero,seed=1,device_sigma=0.5,slow_clients=0,slow_factor=10"


def _histories_equal(a: TrainingHistory, b: TrainingHistory) -> bool:
    if len(a.points) != len(b.points):
        return False
    for pa, pb in zip(a.points, b.points):
        if pa.round_index != pb.round_index:
            return False
        if not np.array_equal(pa.record.per_edge_accuracy,
                              pb.record.per_edge_accuracy):
            return False
        if not np.array_equal(pa.record.per_edge_loss,
                              pb.record.per_edge_loss):
            return False
    return True


class TestCostModels:
    def test_same_seed_same_prices(self):
        a = HeterogeneousCostModel(seed=3, device_sigma=0.7, link_sigma=0.2)
        b = HeterogeneousCostModel(seed=3, device_sigma=0.7, link_sigma=0.2)
        for cid in range(8):
            assert a.compute_s(cid, 5) == b.compute_s(cid, 5)
            assert a.transfer_s("client_edge", cid, 100) == \
                b.transfer_s("client_edge", cid, 100)

    def test_order_independent_draws(self):
        """Querying entities in different orders must not change any price."""
        fwd = HeterogeneousCostModel(seed=5, device_sigma=0.6)
        rev = HeterogeneousCostModel(seed=5, device_sigma=0.6)
        ids = list(range(10))
        fwd_prices = [fwd.compute_s(c, 1) for c in ids]
        rev_prices = [rev.compute_s(c, 1) for c in reversed(ids)][::-1]
        assert fwd_prices == rev_prices

    def test_different_seed_different_prices(self):
        a = HeterogeneousCostModel(seed=1, device_sigma=0.5)
        b = HeterogeneousCostModel(seed=2, device_sigma=0.5)
        assert any(a.compute_s(c, 1) != b.compute_s(c, 1) for c in range(8))

    def test_slow_clients_are_slowed(self):
        model = HeterogeneousCostModel(seed=0, device_sigma=0.0,
                                       slow_clients=(3,), slow_factor=10.0)
        assert model.compute_s(3, 1) == 10.0 * model.compute_s(4, 1)

    def test_transfer_pricing(self):
        model = HeterogeneousCostModel(
            seed=0, latency_s={"client_edge": 0.01},
            mbps={"client_edge": 8.0})  # 8 Mbit/s = 1e6 bytes/s
        # 1000 floats = 8000 bytes -> 8 ms on the wire + 10 ms latency.
        assert model.transfer_s("client_edge", 0, 1000) == \
            pytest.approx(0.01 + 0.008)

    def test_unknown_link_uses_default(self):
        model = HeterogeneousCostModel(seed=0)
        assert model.transfer_s("level_7", 0, 10) == \
            model.transfer_s("level_9", 0, 10)

    def test_scale_multiplies_compute(self):
        model = HeterogeneousCostModel(seed=0, device_sigma=0.3)
        assert model.compute_s(1, 4, scale=2.5) == \
            pytest.approx(2.5 * model.compute_s(1, 4))

    def test_parse_round_trip(self):
        model = make_cost_model(
            "hetero,seed=9,slow_clients=0|7,slow_factor=4,"
            "latency.edge_cloud=0.1,mbps.edge_cloud=10")
        assert isinstance(model, HeterogeneousCostModel)
        assert model.seed == 9
        assert model.slow_clients == frozenset({0, 7})
        assert model.latency_s["edge_cloud"] == 0.1
        assert model.mbps["edge_cloud"] == 10.0

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown cost-model"):
            make_cost_model("hetero,warp_speed=1")

    def test_null_specs(self):
        assert make_cost_model(None).is_null
        assert make_cost_model("null").is_null
        assert make_cost_model("none").is_null
        assert resolve_timing("null") is NULL_TIMING
        assert resolve_timing(None) is NULL_TIMING

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousCostModel(base_step_s=0.0)
        with pytest.raises(ValueError):
            HeterogeneousCostModel(slow_fraction=1.5)
        with pytest.raises(ValueError):
            HeterogeneousCostModel(slow_factor=0.5)


class _UnitCost(NullCostModel):
    """1 s per compute step, 2 s per transfer, 0.5 s per probe — for exact
    arithmetic assertions on the timeline."""

    is_null = False

    def compute_s(self, entity, steps, *, scale=1.0):
        return float(steps) * scale

    def transfer_s(self, link, entity, floats):
        return 2.0

    def probe_s(self, entity):
        return 0.5


class TestSimTimer:
    def test_serial_sums(self):
        t = SimTimer(_UnitCost())
        with t.round(0):
            t.compute(0, 3)
            t.transfer("client_edge", 0, 10)
        assert t.elapsed_s == 5.0
        assert t.last_round_s == 5.0

    def test_parallel_takes_max(self):
        t = SimTimer(_UnitCost())
        with t.round(0):
            with t.parallel():
                with t.branch():
                    t.compute(0, 2)
                with t.branch():
                    t.compute(1, 7)
        assert t.elapsed_s == 7.0

    def test_nested_parallel(self):
        t = SimTimer(_UnitCost())
        with t.round(0):
            with t.parallel():
                with t.branch():          # 2 (transfer) + max(3, 1) = 5
                    t.transfer("l", 0, 1)
                    with t.parallel():
                        with t.branch():
                            t.compute(0, 3)
                        with t.branch():
                            t.compute(1, 1)
                with t.branch():          # 4
                    t.compute(2, 4)
        assert t.elapsed_s == 5.0

    def test_measure_is_isolated(self):
        t = SimTimer(_UnitCost())
        with t.round(0):
            with t.measure() as leg:
                t.compute(0, 6)
            t.compute(1, 1)
        assert leg.duration == 6.0
        assert t.elapsed_s == 1.0  # measured work was not charged

    def test_advance_charges_explicit_duration(self):
        t = SimTimer(_UnitCost())
        with t.round(0):
            t.advance(2.5)
            t.advance(0.0)
            t.advance(-1.0)  # non-positive waits are ignored
        assert t.elapsed_s == 2.5

    def test_now_includes_open_scopes(self):
        t = SimTimer(_UnitCost())
        t.advance(1.0)  # no open scope: straight onto the clock
        with t.round(0):
            t.compute(0, 2)
            assert t.now == 3.0

    def test_wait_until(self):
        t = SimTimer(_UnitCost())
        t.advance(1.0)
        t.wait_until(4.0)
        assert t.elapsed_s == 4.0
        t.wait_until(2.0)  # in the past: no-op
        assert t.elapsed_s == 4.0

    def test_negative_duration_rejected(self):
        class Broken(_UnitCost):
            def compute_s(self, entity, steps, *, scale=1.0):
                return -1.0

        t = SimTimer(Broken())
        with pytest.raises(ValueError, match="nonnegative"):
            t.compute(0, 1)

    def test_null_timing_is_inert(self):
        with NULL_TIMING.round(0):
            NULL_TIMING.compute(0, 100)
            NULL_TIMING.transfer("client_edge", 0, 1e6)
            NULL_TIMING.probe(0)
            NULL_TIMING.advance(10.0)
            NULL_TIMING.wait_until(99.0)
        assert NULL_TIMING.elapsed_s == 0.0
        assert NULL_TIMING.now == 0.0
        assert not NULL_TIMING.enabled


def _run(algo_name, fed, factory, *, timing=None, backend=None, rounds=6,
         faults=None, **kwargs):
    algo = make_algorithm(algo_name, fed, factory, batch_size=4, eta_w=0.1,
                          eta_p=0.01, tau1=2, tau2=2, m_edges=2, seed=0,
                          timing=timing, backend=backend, faults=faults,
                          **kwargs)
    return algo.run(rounds=rounds, eval_every=3)


class TestAlgorithmIntegration:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_null_cost_model_is_bit_identical(self, blob_fed, blob_factory,
                                              name):
        """timing=None and an explicit null timer give the same history."""
        bare = _run(name, blob_fed, blob_factory, timing=None)
        nulled = _run(name, blob_fed, blob_factory,
                      timing=resolve_timing("null"))
        np.testing.assert_array_equal(bare.final_params, nulled.final_params)
        assert _histories_equal(bare.history, nulled.history)
        assert nulled.sim_time_s == 0.0
        assert all(p.sim_time_s == 0.0 for p in nulled.history.points)

    # The semi-async variant is the one algorithm whose *numerics* react to
    # the cost model (arrival times decide which updates each merge sees);
    # every synchronous algorithm must treat the clock as observational.
    @pytest.mark.parametrize(
        "name", sorted(set(ALGORITHMS) - {"semiasync_hierminimax"}))
    def test_cost_model_does_not_change_numerics(self, blob_fed, blob_factory,
                                                 name):
        """The virtual clock is observational: trajectories are unchanged."""
        bare = _run(name, blob_fed, blob_factory, timing=None)
        timed = _run(name, blob_fed, blob_factory,
                     timing=SimTimer(make_cost_model(COST_SPEC)))
        np.testing.assert_array_equal(bare.final_params, timed.final_params)
        assert _histories_equal(bare.history, timed.history)
        assert timed.sim_time_s > 0.0

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_makespan_identical_across_backends(self, blob_fed, blob_factory,
                                                name):
        model = make_cost_model(COST_SPEC)
        spans = {}
        for backend_name in ("serial", "thread", "process", "vectorized"):
            backend = resolve_backend(backend_name, 2)
            try:
                res = _run(name, blob_fed, blob_factory,
                           timing=SimTimer(model), backend=backend)
            finally:
                backend.close()
            spans[backend_name] = res.sim_time_s
        assert len(set(spans.values())) == 1, spans
        assert spans["serial"] > 0.0

    def test_sim_time_monotone_on_history(self, blob_fed, blob_factory):
        res = _run("hierminimax", blob_fed, blob_factory,
                   timing=SimTimer(make_cost_model(COST_SPEC)))
        times = [p.sim_time_s for p in res.history.points]
        assert times == sorted(times)
        assert times[-1] == res.sim_time_s

    def test_straggler_charged_at_slowdown_pace(self):
        """A straggler's truncated update occupies its device for
        ``steps x slowdown`` seconds, not the bare truncated step count."""
        from repro.faults import FaultInjector
        from repro.nn.models import logistic_regression
        from repro.sim.client import Client
        from repro.sim.edge import EdgeServer
        from tests.conftest import make_blob_dataset

        shard = make_blob_dataset(6, 3, 4, seed=0)
        edge = EdgeServer(0, [Client(0, shard, 4,
                                     np.random.default_rng(0))])
        engine = logistic_regression(4, 3, rng=0)
        injector = FaultInjector(FaultPlan(client_straggle=1.0,
                                           straggler_slowdown=3.0, seed=0))
        timing = SimTimer(_UnitCost())
        # tau1=4 at 3x slowdown -> the straggler finishes int(4/3)=1 step,
        # charged at 1 x 3 = 3 s of device time (vs 4 s healthy, 1 s unscaled).
        with timing.round(0):
            edge.model_update(engine, engine.get_params(), tau1=4, tau2=1,
                              lr=0.1, faults=injector, round_index=0,
                              timing=timing)
        # down transfer (2 s) + 3 s compute + up transfer (2 s) = 7 s.
        assert timing.elapsed_s == 7.0

    def test_checkpoint_resume_preserves_clock(self, blob_fed, blob_factory,
                                               tmp_path):
        model = make_cost_model(COST_SPEC)

        def make(cls=HierMinimax, **kw):
            return cls(blob_fed, blob_factory, batch_size=4, eta_w=0.1,
                       eta_p=0.01, tau1=2, tau2=2, m_edges=2, seed=0,
                       timing=SimTimer(model), **kw)

        full = make().run(rounds=6, eval_every=3)
        ckpt = tmp_path / "t.ckpt.json"
        make().run(rounds=3, eval_every=3, checkpoint_path=ckpt,
                   checkpoint_every=3)
        resumed = make()
        assert resumed.load_checkpoint(ckpt) == 3
        res = resumed.run(rounds=3, eval_every=3)
        np.testing.assert_array_equal(full.final_params, res.final_params)
        assert res.sim_time_s == full.sim_time_s


class TestSemiAsync:
    def test_registered(self):
        assert "semiasync_hierminimax" in ALGORITHMS

    def test_staleness_validation(self, blob_fed, blob_factory):
        with pytest.raises(ValueError, match="staleness"):
            SemiAsyncHierMinimax(blob_fed, blob_factory, batch_size=4,
                                 eta_w=0.1, eta_p=0.01, tau1=2, tau2=2,
                                 m_edges=2, seed=0, staleness=-1)

    @pytest.mark.parametrize("staleness", [0, 1, 3])
    def test_null_timing_matches_sync(self, blob_fed, blob_factory,
                                      staleness):
        """Without a cost model every arrival is instantaneous, so any
        staleness bound behaves exactly like the synchronous algorithm."""
        sync = _run("hierminimax", blob_fed, blob_factory)
        semi = _run("semiasync_hierminimax", blob_fed, blob_factory,
                    staleness=staleness)
        np.testing.assert_array_equal(sync.final_params, semi.final_params)
        np.testing.assert_array_equal(sync.final_weights, semi.final_weights)
        assert _histories_equal(sync.history, semi.history)

    def test_staleness_zero_reproduces_sync_exactly(self, blob_fed,
                                                    blob_factory):
        """S=0 forces every round's own cohort: same trajectory, same clock."""
        timing_a = SimTimer(make_cost_model(COST_SPEC))
        timing_b = SimTimer(make_cost_model(COST_SPEC))
        sync = _run("hierminimax", blob_fed, blob_factory, timing=timing_a)
        semi = _run("semiasync_hierminimax", blob_fed, blob_factory,
                    timing=timing_b, staleness=0)
        np.testing.assert_array_equal(sync.final_params, semi.final_params)
        assert semi.sim_time_s == sync.sim_time_s

    def test_bounded_staleness_beats_sync_under_straggler(self):
        """A persistent 10x straggler stalls every synchronous round but only
        a bounded fraction of semi-async merges."""
        fed = make_blob_fed(num_edges=4, clients_per_edge=2)
        from repro.nn.models import make_model_factory
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        spec = "hetero,seed=1,device_sigma=0.3,slow_clients=0,slow_factor=10"
        sync = _run("hierminimax", fed, factory,
                    timing=SimTimer(make_cost_model(spec)), rounds=12)
        semi = _run("semiasync_hierminimax", fed, factory,
                    timing=SimTimer(make_cost_model(spec)), rounds=12,
                    staleness=1)
        assert semi.sim_time_s < sync.sim_time_s

    def test_checkpoint_resume_with_inflight(self, blob_fed, blob_factory,
                                             tmp_path):
        """The in-flight buffer survives checkpoint/resume bit-exactly."""
        model = make_cost_model(COST_SPEC)

        def make():
            return SemiAsyncHierMinimax(
                blob_fed, blob_factory, batch_size=4, eta_w=0.1, eta_p=0.01,
                tau1=2, tau2=2, m_edges=2, seed=0, staleness=2,
                timing=SimTimer(model))

        full = make().run(rounds=8, eval_every=4)
        ckpt = tmp_path / "semi.ckpt.json"
        make().run(rounds=4, eval_every=4, checkpoint_path=ckpt,
                   checkpoint_every=4)
        resumed = make()
        assert resumed.load_checkpoint(ckpt) == 4
        res = resumed.run(rounds=4, eval_every=4)
        np.testing.assert_array_equal(full.final_params, res.final_params)
        assert res.sim_time_s == full.sim_time_s


class TestNoWallClock:
    """The simulated clock must be replayable: no wall-clock reads allowed.

    AST-based so prose in docstrings does not trip it — only actual calls
    (or imports of the ``time`` module at all) count.
    """

    FORBIDDEN_ATTRS = {"time", "perf_counter", "monotonic", "now",
                       "process_time", "time_ns", "perf_counter_ns"}
    FORBIDDEN_MODULES = {"time", "datetime"}

    @pytest.mark.parametrize("package", ["simtime", "sim"])
    def test_no_wall_clock_calls(self, package):
        import ast

        root = Path(__file__).resolve().parent.parent / "src/repro" / package
        assert root.is_dir(), root
        offenders = []
        for path in sorted(root.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [a.name.split(".")[0] for a in node.names]
                elif isinstance(node, ast.ImportFrom):
                    names = [(node.module or "").split(".")[0]]
                elif (isinstance(node, ast.Call)
                      and isinstance(node.func, ast.Attribute)
                      and node.func.attr in self.FORBIDDEN_ATTRS
                      and isinstance(node.func.value, ast.Name)
                      and node.func.value.id in ("time", "datetime")):
                    offenders.append(f"{path.name}:{node.lineno}: "
                                     f"{node.func.value.id}.{node.func.attr}()")
                    continue
                else:
                    continue
                for name in names:
                    if name in self.FORBIDDEN_MODULES:
                        offenders.append(
                            f"{path.name}:{node.lineno}: imports {name}")
        assert not offenders, "\n".join(offenders)
