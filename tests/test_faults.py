"""Tests for repro.faults: plan parsing, seeded injection, graceful degradation,
and checkpoint/resume exactness.

The two load-bearing guarantees:

* a null plan (or no ``faults=`` argument at all) is **bit-identical** to the
  pre-fault-layer code paths, and
* a run killed mid-flight and resumed from its checkpoint reproduces the
  uninterrupted run exactly — parameters, weights, history, and comm totals.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from tests.conftest import make_blob_fed
from repro.baselines.fedavg import FedAvg
from repro.core.hierminimax import HierMinimax
from repro.experiments.presets import fig3_preset
from repro.experiments.runner import run_experiment
from repro.faults import (
    CHECKPOINT_FORMAT,
    CHECKSUM_KEY,
    CheckpointError,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    load_checkpoint_file,
    resolve_injector,
    save_checkpoint_file,
)
from repro.multilayer import MultiLevelHierMinimax
from repro.nn.models import make_model_factory
from repro.obs import Tracer, analyze_trace, format_trace_report
from repro.topology.comm import CommunicationTracker


def make_hmm(fed, factory, **kw):
    return HierMinimax(fed, factory, batch_size=4, eta_w=0.1, eta_p=0.05,
                       tau1=2, tau2=2, m_edges=2, seed=0, **kw)


def history_points(result):
    return [(p.round_index, p.record.worst_accuracy, p.record.average_accuracy)
            for p in result.history.points]


# --------------------------------------------------------------------- plan
class TestFaultPlan:
    def test_none_is_null(self):
        assert FaultPlan.none().is_null
        assert not FaultPlan(client_dropout=0.1).is_null

    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "client_dropout=0.2, edge_outage=0.05, seed=3, max_retries=1")
        assert plan.client_dropout == 0.2
        assert plan.edge_outage == 0.05
        assert plan.seed == 3
        assert plan.retry.max_retries == 1

    def test_parse_empty_spec_is_null(self):
        assert FaultPlan.parse("").is_null

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.parse("client_dropout=0.2,gremlins=1")

    def test_parse_rejects_non_assignment(self):
        with pytest.raises(ValueError, match="not key=value"):
            FaultPlan.parse("client_dropout")

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(client_dropout=1.5)
        with pytest.raises(ValueError):
            FaultPlan(msg_loss=-0.1)

    def test_rejects_bad_slowdown_and_timeout(self):
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            FaultPlan(round_timeout_slots=0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=3, backoff_base_s=0.1,
                             backoff_factor=2.0)
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.4)

    def test_straggler_steps(self):
        assert FaultPlan(client_straggle=0.5).straggler_steps(4) == 2
        # A deadline of one slot at 2x slowdown leaves zero completed steps:
        # the straggler times out into a dropout.
        assert FaultPlan(client_straggle=0.5,
                         round_timeout_slots=1).straggler_steps(4) == 0


# ----------------------------------------------------------------- injector
class TestFaultInjector:
    def test_decisions_are_pure_functions_of_seed(self):
        plan = FaultPlan(client_dropout=0.3, edge_outage=0.2, seed=11)
        a, b = FaultInjector(plan), FaultInjector(plan)
        # Query b in a different order than a: answers must still agree.
        fates_a = [(r, c, a.client_steps(r, c, 4))
                   for r in range(5) for c in range(6)]
        fates_b = [(r, c, b.client_steps(r, c, 4))
                   for r in reversed(range(5)) for c in reversed(range(6))]
        assert sorted(fates_a) == sorted(fates_b)
        assert [a.edge_dark(r, 0) for r in range(20)] == \
               [b.edge_dark(r, 0) for r in range(20)]

    def test_client_fate_stable_within_round(self):
        inj = FaultInjector(FaultPlan(client_dropout=0.5, seed=2))
        first = [inj.client_steps(3, c, 4) for c in range(8)]
        again = [inj.client_steps(3, c, 4) for c in range(8)]
        assert first == again
        # The loss-probe availability shares the same draw.
        for c in range(8):
            assert inj.client_available(3, c) == (first[c] > 0)

    def test_null_plan_is_inert(self):
        inj = resolve_injector(None, obs=None)
        assert not inj.enabled
        assert inj.client_steps(0, 0, 4) == 4
        assert not inj.edge_dark(0, 0)
        arr = np.ones(3)
        out = inj.receive(0, "client_edge", "client:0", arr, 2.0)
        assert out[0] is arr and out[1] == 2.0  # untouched pass-through

    def test_resolve_rejects_bad_type(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            resolve_injector("client_dropout=0.2")

    def test_receive_quarantines_nonfinite_sender(self):
        inj = FaultInjector(FaultPlan(client_dropout=0.01, seed=0))
        bad = np.array([1.0, np.nan, 3.0])
        assert inj.receive(0, "client_edge", "client:5", bad) is None
        assert "client:5" in inj.quarantined
        # Quarantine persists: the sender is dark for the rest of the run.
        assert inj.client_steps(1, 5, 4) == 0
        assert not inj.client_available(2, 5)

    def test_corruption_poisons_then_quarantines(self):
        plan = FaultPlan(msg_corrupt=1.0, seed=0)
        inj = FaultInjector(plan)
        out = inj.receive(0, "edge_cloud", "edge:1", np.ones(16))
        assert out is None  # corrupted -> non-finite -> discarded
        assert "edge:1" in inj.quarantined

    def test_retries_charge_tracker(self):
        plan = FaultPlan(msg_loss=1.0, seed=0)  # every attempt lost
        inj = FaultInjector(plan)
        tracker = CommunicationTracker()
        out = inj.receive(0, "edge_cloud", "edge:0", np.ones(4),
                          floats=4.0, tracker=tracker)
        assert out is None
        # max_retries=2 retransmissions were charged before giving up.
        assert tracker.snapshot().messages["edge_cloud:up"] == \
            plan.retry.max_retries
        assert inj.backoff_s_total == pytest.approx(
            sum(plan.retry.backoff_s(i) for i in range(plan.retry.max_retries)))

    def test_state_dict_round_trip(self):
        inj = FaultInjector(FaultPlan(msg_corrupt=1.0, seed=0))
        inj.receive(0, "edge_cloud", "edge:3", np.ones(4))
        inj.backoff_s_total = 1.25
        clone = FaultInjector(FaultPlan(msg_corrupt=1.0, seed=0))
        clone.load_state_dict(json.loads(json.dumps(inj.state_dict())))
        assert clone.quarantined == inj.quarantined
        assert clone.backoff_s_total == inj.backoff_s_total


# ------------------------------------------------- null-plan bit-identicality
class TestNullPlanBitIdentical:
    def test_hierminimax(self, blob_fed, blob_factory):
        res_plain = make_hmm(blob_fed, blob_factory).run(rounds=4, eval_every=2)
        res_null = make_hmm(blob_fed, blob_factory,
                            faults=FaultPlan.none()).run(rounds=4, eval_every=2)
        np.testing.assert_array_equal(res_plain.final_params,
                                      res_null.final_params)
        np.testing.assert_array_equal(res_plain.final_weights,
                                      res_null.final_weights)
        assert history_points(res_plain) == history_points(res_null)
        assert res_plain.comm.cycles == res_null.comm.cycles
        assert res_plain.comm.messages == res_null.comm.messages

    def test_fedavg(self, blob_fed, blob_factory):
        def run(**kw):
            algo = FedAvg(blob_fed, blob_factory, batch_size=4, eta_w=0.1,
                          tau1=2, seed=0, **kw)
            return algo.run(rounds=4, eval_every=2)
        res_plain, res_null = run(), run(faults=FaultPlan.none())
        np.testing.assert_array_equal(res_plain.final_params,
                                      res_null.final_params)
        assert history_points(res_plain) == history_points(res_null)

    def test_multilayer(self, blob_fed, blob_factory):
        def run(**kw):
            algo = MultiLevelHierMinimax(blob_fed, blob_factory, batch_size=4,
                                         eta_w=0.1, eta_p=0.05, seed=0, **kw)
            return algo.run(rounds=3, eval_every=3)
        res_plain, res_null = run(), run(faults=FaultPlan.none())
        np.testing.assert_array_equal(res_plain.final_params,
                                      res_null.final_params)
        assert history_points(res_plain) == history_points(res_null)


# ----------------------------------------------------- faulted-run behavior
class TestFaultedRuns:
    PLAN = FaultPlan(client_dropout=0.2, edge_outage=0.1, msg_loss=0.1, seed=7)

    def test_seeded_faults_are_deterministic(self, blob_fed, blob_factory):
        res_a = make_hmm(blob_fed, blob_factory, faults=self.PLAN).run(
            rounds=5, eval_every=5)
        res_b = make_hmm(blob_fed, blob_factory, faults=self.PLAN).run(
            rounds=5, eval_every=5)
        np.testing.assert_array_equal(res_a.final_params, res_b.final_params)
        np.testing.assert_array_equal(res_a.final_weights, res_b.final_weights)
        assert res_a.comm.messages == res_b.comm.messages

    def test_faults_actually_perturb_the_run(self, blob_fed, blob_factory):
        res_clean = make_hmm(blob_fed, blob_factory).run(rounds=5, eval_every=5)
        res_fault = make_hmm(blob_fed, blob_factory, faults=self.PLAN).run(
            rounds=5, eval_every=5)
        assert not np.array_equal(res_clean.final_params,
                                  res_fault.final_params)

    def test_converges_under_twenty_percent_dropout(self):
        # The acceptance demo in miniature: 20% dropout must still reach
        # a worst-edge accuracy within 0.15 of the fault-free run.
        fed = make_blob_fed(num_edges=3, clients_per_edge=3, n_per_client=16)
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        clean = make_hmm(fed, factory).run(rounds=25, eval_every=25)
        faulted = make_hmm(fed, factory,
                           faults=FaultPlan(client_dropout=0.2, seed=1)).run(
            rounds=25, eval_every=25)
        worst_clean = clean.history.final().record.worst_accuracy
        worst_fault = faulted.history.final().record.worst_accuracy
        assert worst_fault >= worst_clean - 0.15

    def test_total_corruption_stays_finite(self, blob_fed, blob_factory):
        plan = FaultPlan(msg_corrupt=1.0, seed=3)
        algo = make_hmm(blob_fed, blob_factory, faults=plan)
        res = algo.run(rounds=4, eval_every=4)
        assert np.all(np.isfinite(res.final_params))
        assert np.all(np.isfinite(res.final_weights))
        assert algo.faults.quarantined

    def test_fault_metrics_flow_through_obs(self, blob_fed, blob_factory):
        obs = Tracer(None)
        make_hmm(blob_fed, blob_factory, obs=obs,
                 faults=FaultPlan(client_dropout=0.4, msg_loss=0.4,
                                  seed=2)).run(rounds=5, eval_every=5)
        counters = obs.snapshot()["counters"]
        assert counters.get("clients_dropped_total", 0) > 0
        assert counters.get("retries_total", 0) > 0

    def test_stragglers_upload_truncated_updates(self, blob_fed, blob_factory):
        obs = Tracer(None)
        make_hmm(blob_fed, blob_factory, obs=obs,
                 faults=FaultPlan(client_straggle=0.8, seed=4)).run(
            rounds=4, eval_every=4)
        assert obs.snapshot()["counters"].get("stragglers_total", 0) > 0


# ------------------------------------------------------- checkpoint / resume
class Boom(RuntimeError):
    """Simulated process kill."""


class TestKillAndResume:
    PLAN = FaultPlan(client_dropout=0.2, msg_loss=0.1, seed=5)

    def _kill_resume(self, fed, factory, make_algo):
        full = make_algo().run(rounds=6, eval_every=2)

        killed = make_algo()
        orig = killed.run_round

        def run_round(k):
            if k == 4:
                raise Boom()
            orig(k)

        killed.run_round = run_round
        ckpt = self.tmp_path / "run.ckpt.json"
        with pytest.raises(Boom):
            killed.run(rounds=6, eval_every=2,
                       checkpoint_path=ckpt, checkpoint_every=3)

        resumed = make_algo()
        assert resumed.load_checkpoint(ckpt) == 3
        res = resumed.run(rounds=3, eval_every=2)

        np.testing.assert_array_equal(full.final_params, res.final_params)
        if full.final_weights is not None:
            np.testing.assert_array_equal(full.final_weights,
                                          res.final_weights)
        assert history_points(full) == history_points(res)
        assert full.comm.cycles == res.comm.cycles
        assert full.comm.messages == res.comm.messages
        assert full.comm.floats == pytest.approx(res.comm.floats)

    @pytest.fixture(autouse=True)
    def _tmp(self, tmp_path):
        self.tmp_path = tmp_path

    def test_hierminimax_faulted(self, blob_fed, blob_factory):
        self._kill_resume(blob_fed, blob_factory,
                          lambda: make_hmm(blob_fed, blob_factory,
                                           faults=self.PLAN))

    def test_hierminimax_fault_free(self, blob_fed, blob_factory):
        self._kill_resume(blob_fed, blob_factory,
                          lambda: make_hmm(blob_fed, blob_factory))

    def test_fedavg(self, blob_fed, blob_factory):
        self._kill_resume(
            blob_fed, blob_factory,
            lambda: FedAvg(blob_fed, blob_factory, batch_size=4, eta_w=0.1,
                           tau1=2, seed=0, faults=self.PLAN))

    def test_load_rejects_wrong_algorithm(self, blob_fed, blob_factory,
                                          tmp_path):
        path = tmp_path / "x.ckpt.json"
        make_hmm(blob_fed, blob_factory).run(rounds=2, eval_every=2,
                                             checkpoint_path=path,
                                             checkpoint_every=2)
        other = FedAvg(blob_fed, blob_factory, batch_size=4, eta_w=0.1,
                       tau1=2, seed=0)
        with pytest.raises(CheckpointError, match="algorithm"):
            other.load_checkpoint(path)


class TestCheckpointFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt.json"
        state = {"algorithm": "demo", "round": 3,
                 "w": np.linspace(0, 1, 5),
                 "rng": np.random.default_rng(9)}
        save_checkpoint_file(path, state)
        back = load_checkpoint_file(path, expect_algorithm="demo")
        assert back["round"] == 3
        np.testing.assert_array_equal(back["w"], state["w"])
        # The restored generator continues the stream exactly.
        assert back["rng"].random(4).tolist() == \
               np.random.default_rng(9).random(4).tolist()

    def test_format_field_written(self, tmp_path):
        path = tmp_path / "c.ckpt.json"
        save_checkpoint_file(path, {"algorithm": "demo", "round": 0})
        raw = json.loads(path.read_text())
        assert raw["format"] == CHECKPOINT_FORMAT

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint_file(tmp_path / "absent.ckpt.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.ckpt.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            load_checkpoint_file(path)

    def test_wrong_format_version(self, tmp_path):
        path = tmp_path / "v999.ckpt.json"
        save_checkpoint_file(path, {"algorithm": "demo", "round": 0})
        raw = json.loads(path.read_text())
        raw["format"] = 999
        # Drop the envelope so the mutation reads as a future format, not rot.
        raw.pop(CHECKSUM_KEY, None)
        path.write_text(json.dumps(raw))
        with pytest.raises(CheckpointError, match="reads format"):
            load_checkpoint_file(path)


# ------------------------------------------------------------ runner wiring
class TestRunnerIntegration:
    def test_resume_requires_checkpoint_dir(self):
        preset = fig3_preset("tiny").with_overrides(slots=8, eval_points=1)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_experiment(preset, resume=True)

    def test_runner_rejects_injector_instance(self):
        preset = fig3_preset("tiny").with_overrides(slots=8, eval_points=1)
        inj = FaultInjector(FaultPlan(client_dropout=0.2))
        with pytest.raises(TypeError, match="FaultPlan"):
            run_experiment(preset, algorithms=("hierminimax",), faults=inj)

    def test_runner_checkpoint_resume_matches(self, tmp_path):
        preset = fig3_preset("tiny").with_overrides(slots=24, eval_points=2)
        plan = FaultPlan(client_dropout=0.2, seed=1)
        kw = dict(algorithms=("hierminimax",), faults=plan)
        full = run_experiment(preset, **kw)
        # First leg writes checkpoints; second leg resumes and finishes.
        run_experiment(preset, checkpoint_dir=tmp_path, checkpoint_every=2,
                       **kw)
        resumed = run_experiment(preset, checkpoint_dir=tmp_path, resume=True,
                                 **kw)
        np.testing.assert_array_equal(
            full.results["hierminimax"].final_params,
            resumed.results["hierminimax"].final_params)


# ------------------------------------------------------------- observability
class TestFaultTraceReport:
    def test_fault_events_reach_trace_and_report(self, blob_fed, blob_factory,
                                                 tmp_path):
        path = tmp_path / "run.trace.jsonl"
        with Tracer(str(path)) as obs:
            make_hmm(blob_fed, blob_factory, obs=obs,
                     faults=FaultPlan(client_dropout=0.4, edge_outage=0.2,
                                      seed=7)).run(rounds=5, eval_every=5)
        report = analyze_trace(path)
        assert report.fault_totals
        assert report.faults_injected > 0
        assert report.faults_by_round
        text = format_trace_report(report)
        assert "faults:" in text
        assert "injected" in text

    def test_clean_trace_has_no_fault_section(self, blob_fed, blob_factory,
                                              tmp_path):
        path = tmp_path / "clean.trace.jsonl"
        with Tracer(str(path)) as obs:
            make_hmm(blob_fed, blob_factory, obs=obs).run(rounds=2,
                                                          eval_every=2)
        report = analyze_trace(path)
        assert not report.fault_totals
        assert "faults:" not in format_trace_report(report)


# ------------------------------------------------------------- entry guards
class TestInputValidation:
    def test_local_sgd_rejects_bad_steps_and_lr(self, blob_fed, blob_factory):
        algo = make_hmm(blob_fed, blob_factory)
        client = algo.edges[0].clients[0]
        with pytest.raises(ValueError):
            client.local_sgd(algo.engine, algo.w, steps=0, lr=0.1)
        with pytest.raises(ValueError):
            client.local_sgd(algo.engine, algo.w, steps=2, lr=-0.1)
        with pytest.raises(TypeError):
            client.local_sgd(algo.engine, algo.w, steps=2.5, lr=0.1)

    def test_model_update_rejects_bad_periods(self, blob_fed, blob_factory):
        algo = make_hmm(blob_fed, blob_factory)
        edge = algo.edges[0]
        with pytest.raises(ValueError):
            edge.model_update(algo.engine, algo.w, tau1=0, tau2=2, lr=0.1)
        with pytest.raises(ValueError):
            edge.model_update(algo.engine, algo.w, tau1=2, tau2=2, lr=0.0)

    def test_compress_requires_explicit_rng(self):
        from repro.compression import QSGDQuantizer
        from repro.sim.edge import _compress

        with pytest.raises(ValueError, match="comp_rng"):
            _compress(QSGDQuantizer(), 0, np.ones(8), None)

    def test_run_rejects_bad_round_counts(self, blob_fed, blob_factory):
        algo = make_hmm(blob_fed, blob_factory)
        with pytest.raises(ValueError):
            algo.run(rounds=0)
        with pytest.raises(ValueError):
            algo.run(rounds=2, eval_every=0)
        with pytest.raises(ValueError):
            algo.run(rounds=2, checkpoint_path="x", checkpoint_every=0)


# ------------------------------------------------------- byzantine satellite
class TestAttackSpecKeys:
    def test_parse_attack_fields_round_trip(self):
        plan = FaultPlan.parse("client_dropout=0.1,attack=sign_flip,"
                               "attack_fraction=0.2,attack_scale=5,"
                               "attack_seed=3,attack_start_round=4,"
                               "attack_colluding=1")
        assert plan.client_dropout == 0.1
        byz = plan.byzantine
        assert byz is not None
        assert byz.attack == "sign_flip"
        assert byz.fraction == 0.2
        assert byz.effective_scale == 5.0
        assert byz.seed == 3
        assert byz.start_round == 4
        assert byz.colluding
        assert plan.has_attack and not plan.is_null

    def test_parse_attack_clients(self):
        plan = FaultPlan.parse("attack=gauss,attack_clients=0|3|7")
        assert plan.byzantine.clients == (0, 3, 7)

    def test_attack_only_plan_is_active(self):
        plan = FaultPlan.parse("attack=loss_inflation,attack_fraction=0.3")
        assert not plan.is_null
        assert FaultInjector(plan).enabled

    def test_null_attack_does_not_activate_plan(self):
        from repro.defense import AttackPlan

        plan = FaultPlan(byzantine=AttackPlan.none())
        assert plan.is_null and not plan.has_attack
        assert not FaultInjector(plan).enabled

    def test_guard_zscore_alone_does_not_activate_plan(self):
        plan = FaultPlan.parse("guard_zscore=4.0")
        assert plan.guard_zscore == 4.0
        assert plan.is_null
        assert not FaultInjector(plan).enabled

    def test_rejects_bad_guard_and_attack_values(self):
        with pytest.raises(ValueError):
            FaultPlan(guard_zscore=-1.0)
        with pytest.raises(ValueError):
            FaultPlan.parse("attack=zombie,attack_fraction=0.1")


class TestNormZScoreGuard:
    def guarded(self, **kw):
        kw.setdefault("guard_zscore", 4.0)
        kw.setdefault("msg_loss", 1e-9)  # arms the plan without the attack tier
        return FaultInjector(FaultPlan(**kw))

    def cohort(self, inj, n=10, norm=1.0, round_index=0):
        for i in range(n):
            vec = np.full(4, norm / 2.0)  # ||vec|| = norm
            assert inj.receive(round_index, "client_edge", f"client:{i}",
                               vec) is not None

    def test_anomalous_norm_is_quarantined(self):
        obs = Tracer(None)
        inj = FaultInjector(
            FaultPlan(guard_zscore=4.0, msg_loss=1e-9), obs=obs)
        self.cohort(inj, n=10, norm=1.0)
        out = inj.receive(0, "client_edge", "client:99", np.full(4, 500.0))
        assert out is None
        assert "client:99" in inj.quarantined
        counters = obs.snapshot()["counters"]
        assert counters["norm_guard_rejections_total"] == 1
        assert counters["quarantined_senders"] == 1
        # Quarantine persists: the sender stays dark in later rounds too.
        assert inj.client_available(1, 99) is False

    def test_honest_cohort_all_pass(self):
        # z=10: wide enough that honest Gaussian norm spread (MAD-scaled
        # z-scores of ~4 are routine in a 30-draw cohort) never trips it.
        inj = self.guarded(guard_zscore=10.0)
        gen = np.random.default_rng(0)
        for i in range(30):
            vec = gen.normal(size=8)
            assert inj.receive(0, "client_edge", f"client:{i}",
                               vec) is not None
        assert not inj.quarantined

    def test_small_cohort_never_flags(self):
        # Fewer than GUARD_MIN_COHORT prior uploads: no judgment possible.
        inj = self.guarded()
        self.cohort(inj, n=4, norm=1.0)
        out = inj.receive(0, "client_edge", "client:50", np.full(4, 500.0))
        assert out is not None
        assert not inj.quarantined

    def test_cohorts_are_per_link_and_per_round(self):
        inj = self.guarded()
        self.cohort(inj, n=10, norm=1.0, round_index=0)
        # Same round, different link: separate cohort, no flag.
        out = inj.receive(0, "edge_cloud", "edge:0", np.full(4, 500.0))
        assert out is not None
        # Next round: the cohort is rebuilt from scratch.
        out = inj.receive(1, "client_edge", "client:60", np.full(4, 500.0))
        assert out is not None
        assert not inj.quarantined

    def test_guard_disabled_by_default(self):
        inj = FaultInjector(FaultPlan(msg_loss=1e-9))
        self.cohort(inj, n=10, norm=1.0)
        out = inj.receive(0, "client_edge", "client:99", np.full(4, 500.0))
        assert out is not None

    def test_guard_run_end_to_end(self, blob_fed, blob_factory):
        from repro.defense import AttackPlan

        plan = FaultPlan(guard_zscore=6.0,
                         byzantine=AttackPlan(attack="scale", clients=(0,),
                                              scale=1e6))
        res = make_hmm(blob_fed, blob_factory, faults=plan).run(
            rounds=3, eval_every=3)
        assert np.all(np.isfinite(res.final_params))


class TestStaleCheckpointResume:
    def test_pre_attack_checkpoint_resumes_cleanly(self, blob_fed,
                                                   blob_factory, tmp_path):
        # A checkpoint written before the Byzantine tier existed has no
        # "suspicion" key in the injector state; resuming must not crash and
        # must behave exactly like a fresh-format checkpoint.
        path = tmp_path / "stale.ckpt.json"
        plan = FaultPlan(client_dropout=0.2, seed=5)
        make_hmm(blob_fed, blob_factory, faults=plan).run(
            rounds=3, eval_every=3, checkpoint_path=path, checkpoint_every=3)

        payload = json.loads(path.read_text())
        assert "suspicion" in payload["faults"]
        del payload["faults"]["suspicion"]
        # A checkpoint that old also predates the integrity envelope; keeping
        # the (now stale) checksum would be a bit-rot simulation instead.
        payload.pop(CHECKSUM_KEY, None)
        path.write_text(json.dumps(payload))

        resumed = make_hmm(blob_fed, blob_factory, faults=plan)
        assert resumed.load_checkpoint(path) == 3
        assert resumed.faults.suspicion == {}
        res = resumed.run(rounds=3, eval_every=3)

        full = make_hmm(blob_fed, blob_factory, faults=plan).run(
            rounds=6, eval_every=3)
        np.testing.assert_array_equal(full.final_params, res.final_params)

    def test_injector_state_round_trips_suspicion(self):
        inj = FaultInjector(FaultPlan(msg_loss=0.1))
        inj.suspect(0, "client:3", action="rejected", aggregator="krum")
        inj.suspect(1, "client:3", action="clipped", aggregator="norm_clip")
        state = inj.state_dict()
        fresh = FaultInjector(FaultPlan(msg_loss=0.1))
        fresh.load_state_dict(state)
        assert fresh.suspicion == {"client:3": 2}
