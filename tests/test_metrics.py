"""Tests for repro.metrics: fairness statistics, evaluation, history."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.evaluation import evaluate_per_edge, evaluate_record
from repro.metrics.fairness import (
    accuracy_range,
    accuracy_variance_x1e4,
    average_accuracy,
    entropy_of_weights,
    jain_fairness_index,
    worst_accuracy,
    worst_fraction_mean,
)
from repro.metrics.history import HistoryPoint, TrainingHistory
from repro.nn.models import logistic_regression
from repro.topology.comm import CommunicationTracker

accuracy_arrays = hnp.arrays(dtype=np.float64, shape=st.integers(1, 20),
                             elements=st.floats(0.0, 1.0, allow_nan=False))


class TestFairnessStats:
    def test_average_and_worst(self):
        acc = np.array([0.9, 0.5, 0.7])
        assert average_accuracy(acc) == pytest.approx(0.7)
        assert worst_accuracy(acc) == pytest.approx(0.5)

    def test_worst_fraction(self):
        acc = np.linspace(0.1, 1.0, 10)
        assert worst_fraction_mean(acc, 0.10) == pytest.approx(0.1)
        assert worst_fraction_mean(acc, 0.30) == pytest.approx(0.2)

    def test_worst_fraction_includes_at_least_one(self):
        assert worst_fraction_mean(np.array([0.4, 0.8]), 0.01) == pytest.approx(0.4)

    def test_worst_fraction_validation(self):
        with pytest.raises(ValueError):
            worst_fraction_mean(np.array([0.5]), 0.0)

    def test_variance_units(self):
        """Table 2's units: variance of percent accuracies."""
        acc = np.array([0.80, 0.90])
        # percents 80, 90 -> variance 25
        assert accuracy_variance_x1e4(acc) == pytest.approx(25.0)

    def test_range(self):
        assert accuracy_range(np.array([0.2, 0.9, 0.5])) == pytest.approx(0.7)

    def test_jain_uniform_is_one(self):
        assert jain_fairness_index(np.full(5, 0.7)) == pytest.approx(1.0)

    def test_jain_decreases_with_spread(self):
        uniform = jain_fairness_index(np.full(4, 0.5))
        skewed = jain_fairness_index(np.array([1.0, 0.1, 0.1, 0.1]))
        assert skewed < uniform

    def test_entropy_uniform_max(self):
        p = np.full(4, 0.25)
        assert entropy_of_weights(p) == pytest.approx(np.log(4))

    def test_entropy_peaked_zero(self):
        assert entropy_of_weights(np.array([1.0, 0.0, 0.0])) == pytest.approx(0.0)

    def test_entropy_rejects_negative(self):
        with pytest.raises(ValueError):
            entropy_of_weights(np.array([1.1, -0.1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            worst_accuracy(np.array([]))

    @settings(max_examples=100, deadline=None)
    @given(acc=accuracy_arrays)
    def test_property_orderings(self, acc):
        assert worst_accuracy(acc) <= average_accuracy(acc) + 1e-12
        assert worst_accuracy(acc) <= worst_fraction_mean(acc, 0.5) + 1e-12
        assert 0 <= jain_fairness_index(acc) <= 1 + 1e-12
        assert accuracy_variance_x1e4(acc) >= 0


class TestEvaluation:
    def test_per_edge_shapes(self, tiny_image_fed):
        net = logistic_regression(tiny_image_fed.input_dim,
                                  tiny_image_fed.num_classes, rng=0)
        acc, loss = evaluate_per_edge(net, net.get_params(), tiny_image_fed)
        assert acc.shape == (tiny_image_fed.num_edges,)
        assert loss.shape == (tiny_image_fed.num_edges,)
        assert np.all((acc >= 0) & (acc <= 1))
        assert np.all(loss > 0)

    def test_record_consistency(self, tiny_image_fed):
        net = logistic_regression(tiny_image_fed.input_dim,
                                  tiny_image_fed.num_classes, rng=0)
        rec = evaluate_record(net, net.get_params(), tiny_image_fed, tag="t")
        assert rec.average_accuracy == pytest.approx(rec.per_edge_accuracy.mean())
        assert rec.worst_accuracy == pytest.approx(rec.per_edge_accuracy.min())
        assert rec.extra == {"tag": "t"}
        as_dict = rec.as_dict()
        assert "tag" in as_dict

    def test_evaluate_is_side_effect_free(self, tiny_image_fed):
        """Evaluating w must not leak it into the shared engine.

        Regression test: algorithms share one engine and set its parameters
        per local-SGD call, so a mid-round evaluation that left ``w`` behind
        would silently perturb the next training step.
        """
        net = logistic_regression(tiny_image_fed.input_dim,
                                  tiny_image_fed.num_classes, rng=0)
        before = net.get_params()
        probe = before + 1.0  # clearly different parameters
        evaluate_per_edge(net, probe, tiny_image_fed)
        np.testing.assert_array_equal(net.get_params(), before)
        evaluate_record(net, probe, tiny_image_fed)
        np.testing.assert_array_equal(net.get_params(), before)

    def test_worst10_degraded_flag_on_small_layouts(self, blob_fed,
                                                    tiny_image_fed):
        """Fewer than 10 edge areas: the worst-10% column is really the plain
        worst accuracy, and the record must say so."""
        net = logistic_regression(blob_fed.input_dim, blob_fed.num_classes,
                                  rng=0)
        rec = evaluate_record(net, net.get_params(), blob_fed)  # 3 edges
        assert rec.extra.get("worst10_degraded") is True
        assert rec.worst10_accuracy == pytest.approx(rec.worst_accuracy)
        # 10 edges: a true worst-10% statistic, no flag.
        net10 = logistic_regression(tiny_image_fed.input_dim,
                                    tiny_image_fed.num_classes, rng=0)
        rec10 = evaluate_record(net10, net10.get_params(), tiny_image_fed)
        assert "worst10_degraded" not in rec10.extra

    def test_worst10_degraded_respects_caller_value(self, blob_fed):
        """setdefault semantics: an explicit caller-supplied flag wins."""
        net = logistic_regression(blob_fed.input_dim, blob_fed.num_classes,
                                  rng=0)
        rec = evaluate_record(net, net.get_params(), blob_fed,
                              worst10_degraded=False)
        assert rec.extra["worst10_degraded"] is False

    def test_as_dict_rejects_shadowing_extra_keys(self, blob_fed):
        """Regression: ``**extra`` merged last silently shadowed the real
        statistic — an ``extra["worst_accuracy"]`` replaced the computed
        minimum in every serialized record downstream.  Now it raises."""
        net = logistic_regression(blob_fed.input_dim, blob_fed.num_classes,
                                  rng=0)
        rec = evaluate_record(net, net.get_params(), blob_fed,
                              worst_accuracy=1.0)  # a lie, into extra
        with pytest.raises(ValueError, match="worst_accuracy"):
            rec.as_dict()
        # Honest extras still pass through untouched.
        ok = evaluate_record(net, net.get_params(), blob_fed, tag="t")
        assert ok.as_dict()["tag"] == "t"

    def test_fused_eval_matches_two_pass_bytes(self, tiny_image_fed):
        """The fused accuracy_and_loss sweep is byte-identical to the old
        two-forward-pass evaluation (satellite 3 of ISSUE 10)."""
        from repro.nn.models import mlp

        fed = tiny_image_fed
        for net in (logistic_regression(fed.input_dim, fed.num_classes,
                                        rng=0, l2=1e-3),
                    mlp(fed.input_dim, (9,), fed.num_classes, rng=1,
                        l2=1e-3)):
            w = net.get_params()
            acc_old = np.empty(fed.num_edges)
            loss_old = np.empty(fed.num_edges)
            for j, edge in enumerate(fed.edges):
                acc_old[j] = net.accuracy(edge.test.X, edge.test.y)
                loss_old[j] = net.loss(edge.test.X, edge.test.y)
            acc_new, loss_new = evaluate_per_edge(net, w, fed)
            assert acc_old.tobytes() == acc_new.tobytes()
            assert loss_old.tobytes() == loss_new.tobytes()

    def test_perfect_model_scores_one(self, blob_fed):
        """A converged model on separable blobs has accuracy 1 on every edge."""
        net = logistic_regression(blob_fed.input_dim, blob_fed.num_classes, rng=0)
        pool_X = np.concatenate([e.train_pool().X for e in blob_fed.edges])
        pool_y = np.concatenate([e.train_pool().y for e in blob_fed.edges])
        for _ in range(200):
            _, g = net.loss_and_gradient(pool_X, pool_y)
            net.params_view()[:] -= 0.5 * g
        rec = evaluate_record(net, net.get_params(), blob_fed)
        assert rec.worst_accuracy == 1.0
        assert rec.variance_x1e4 == pytest.approx(0.0)


def _point(k, slots, cycles, worst, avg=0.8):
    from repro.metrics.evaluation import EvaluationRecord

    tracker = CommunicationTracker()
    tracker.sync_cycle("edge_cloud", count=cycles)
    rec = EvaluationRecord(
        per_edge_accuracy=np.array([avg, worst]),
        per_edge_loss=np.array([0.1, 0.2]),
        average_accuracy=avg, worst_accuracy=worst,
        worst10_accuracy=worst, variance_x1e4=1.0)
    return HistoryPoint(round_index=k, slots=slots, comm=tracker.snapshot(),
                        record=rec)


class TestTrainingHistory:
    def test_append_and_len(self):
        h = TrainingHistory("x")
        h.append(_point(0, 4, 2, 0.1))
        h.append(_point(1, 8, 4, 0.2))
        assert len(h) == 2

    def test_rejects_decreasing_rounds(self):
        h = TrainingHistory()
        h.append(_point(3, 4, 2, 0.1))
        with pytest.raises(ValueError):
            h.append(_point(1, 8, 4, 0.2))

    def test_series(self):
        h = TrainingHistory()
        for k, worst in enumerate([0.1, 0.3, 0.5]):
            h.append(_point(k, 4 * (k + 1), 2 * (k + 1), worst))
        x, y = h.series("worst_accuracy")
        np.testing.assert_array_equal(x, [2, 4, 6])
        np.testing.assert_array_equal(y, [0.1, 0.3, 0.5])

    def test_series_slot_measure(self):
        h = TrainingHistory()
        h.append(_point(0, 4, 2, 0.1))
        x, _ = h.series("worst_accuracy", comm_measure="slots")
        np.testing.assert_array_equal(x, [4])

    def test_series_unknown_measure_raises(self):
        h = TrainingHistory()
        h.append(_point(0, 4, 2, 0.1))
        with pytest.raises(ValueError):
            h.series("worst_accuracy", comm_measure="carrier_pigeons")

    def test_series_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().series("worst_accuracy")

    def test_rounds_to_target(self):
        h = TrainingHistory()
        for k, worst in enumerate([0.1, 0.3, 0.5]):
            h.append(_point(k, 4 * (k + 1), 2 * (k + 1), worst))
        assert h.rounds_to_target("worst_accuracy", 0.3) == 4
        assert h.rounds_to_target("worst_accuracy", 0.9) is None

    def test_final_and_best(self):
        h = TrainingHistory()
        h.append(_point(0, 4, 2, 0.5))
        h.append(_point(1, 8, 4, 0.2))
        assert h.final().record.worst_accuracy == 0.2
        assert h.best("worst_accuracy").record.worst_accuracy == 0.5

    def test_as_dict_serializable(self):
        from repro.utils.serialization import to_jsonable

        h = TrainingHistory("algo")
        h.append(_point(0, 4, 2, 0.5))
        payload = to_jsonable(h.as_dict())
        assert payload["algorithm"] == "algo"
        assert payload["points"][0]["edge_cloud_cycles"] == 2
