"""Shared fixtures: tiny federated datasets, model factories, RNGs.

Fixtures are deliberately small (8×8 images, few samples) so the full suite runs
in seconds; the paper-shape assertions live in the benchmarks, not here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, EdgeAreaData, FederatedDataset
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_image_fed() -> FederatedDataset:
    """10 edges × 3 clients, 8×8 EMNIST-like images, one class per edge."""
    return make_federated_dataset("emnist_digits", scale="tiny", seed=7)


@pytest.fixture(scope="session")
def tiny_logistic_factory(tiny_image_fed):
    return make_model_factory("logistic", tiny_image_fed.input_dim,
                              tiny_image_fed.num_classes)


@pytest.fixture(scope="session")
def tiny_mlp_factory(tiny_image_fed):
    return make_model_factory("mlp", tiny_image_fed.input_dim,
                              tiny_image_fed.num_classes, hidden=(16,))


def make_blob_dataset(n_per_class: int, num_classes: int, dim: int,
                      seed: int = 0, separation: float = 3.0) -> Dataset:
    """Well-separated Gaussian blobs — an easy, fast classification task."""
    gen = np.random.default_rng(seed)
    centers = separation * gen.normal(size=(num_classes, dim))
    X = np.concatenate([centers[c] + gen.normal(size=(n_per_class, dim))
                        for c in range(num_classes)])
    y = np.repeat(np.arange(num_classes), n_per_class)
    return Dataset(X, y, num_classes)


def make_blob_fed(num_edges: int = 3, clients_per_edge: int = 2,
                  n_per_client: int = 12, dim: int = 5, seed: int = 0,
                  ) -> FederatedDataset:
    """A tiny heterogeneous federated layout over Gaussian blobs.

    Edge ``e`` holds classes ``{e}`` only (one-class-per-edge heterogeneity) with
    ``num_edges`` classes overall.
    """
    gen = np.random.default_rng(seed)
    centers = 3.0 * gen.normal(size=(num_edges, dim))
    edges = []
    for e in range(num_edges):
        clients = []
        for _ in range(clients_per_edge):
            X = centers[e] + gen.normal(size=(n_per_client, dim))
            y = np.full(n_per_client, e, dtype=np.int64)
            clients.append(Dataset(X, y, num_edges))
        X_test = centers[e] + gen.normal(size=(n_per_client, dim))
        test = Dataset(X_test, np.full(n_per_client, e, dtype=np.int64), num_edges)
        edges.append(EdgeAreaData(clients, test, name=f"blob{e}"))
    return FederatedDataset(edges, name="blobs")


@pytest.fixture()
def blob_fed() -> FederatedDataset:
    return make_blob_fed()


@pytest.fixture()
def blob_factory(blob_fed):
    return make_model_factory("logistic", blob_fed.input_dim, blob_fed.num_classes)
