"""Tests for the Adult-like generator and the Synthetic(α, β) generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adult import AdultLikeGenerator, AdultLikeSpec, make_adult_groups
from repro.data.synthetic_fl import SyntheticFLSpec, generate_synthetic_fl


class TestAdultSpec:
    def test_defaults_valid(self):
        AdultLikeSpec()

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            AdultLikeSpec(group_shift=-1.0)

    def test_rejects_empty_fields(self):
        with pytest.raises(ValueError):
            AdultLikeSpec(fields=())


class TestAdultGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return AdultLikeGenerator()

    def test_one_hot_structure(self, gen):
        ds = gen.sample_group(True, 50, np.random.default_rng(0))
        assert ds.input_dim == gen.input_dim
        # exactly one active category per field
        assert np.all(ds.X.sum(axis=1) == len(AdultLikeSpec().fields))
        assert set(np.unique(ds.X)) <= {0.0, 1.0}

    def test_binary_labels(self, gen):
        ds = gen.sample_group(False, 50, np.random.default_rng(0))
        assert ds.num_classes == 2
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_group_label_models_conflict(self, gen):
        """A model fit to one group must transfer poorly to the other.

        This is the heterogeneity that Table 2's Adult row exercises: the two
        education groups have conflicting income models (coefficient shift).
        """
        from repro.nn.models import logistic_regression

        rng = np.random.default_rng(1)
        doc_tr = gen.sample_group(True, 1500, rng)
        doc_te = gen.sample_group(True, 800, rng)
        oth_te = gen.sample_group(False, 800, rng)
        net = logistic_regression(doc_tr.input_dim, 2, rng=0)
        for _ in range(300):
            _, g = net.loss_and_gradient(doc_tr.X, doc_tr.y)
            net.params_view()[:] -= 0.5 * g
        own = net.accuracy(doc_te.X, doc_te.y)
        other = net.accuracy(oth_te.X, oth_te.y)
        assert own > other + 0.05

    def test_group_marginals_differ(self, gen):
        rng = np.random.default_rng(2)
        doc = gen.sample_group(True, 3000, rng).X.mean(axis=0)
        other = gen.sample_group(False, 3000, rng).X.mean(axis=0)
        assert np.abs(doc - other).max() > 0.05

    def test_rejects_zero_samples(self, gen):
        with pytest.raises(ValueError):
            gen.sample_group(True, 0, np.random.default_rng(0))

    def test_deterministic(self):
        a = AdultLikeGenerator().sample_group(True, 10, np.random.default_rng(3))
        b = AdultLikeGenerator().sample_group(True, 10, np.random.default_rng(3))
        np.testing.assert_array_equal(a.X, b.X)
        np.testing.assert_array_equal(a.y, b.y)

    def test_make_adult_groups(self):
        trains, tests = make_adult_groups(400, 10, np.random.default_rng(0))
        assert len(trains) == 2 and len(tests) == 2
        # doctorate (index 0) is the scarce minority group in training
        assert len(trains[0]) == 48  # 0.12 * 400
        assert len(trains[1]) == 400
        assert all(len(t) == 10 for t in tests)

    def test_make_adult_groups_minimum_doctorate(self):
        trains, _ = make_adult_groups(50, 10, np.random.default_rng(0))
        assert len(trains[0]) == 30  # floor kicks in


class TestSyntheticFLSpec:
    def test_defaults_valid(self):
        SyntheticFLSpec()

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            SyntheticFLSpec(alpha=-1.0)

    def test_rejects_bad_test_fraction(self):
        with pytest.raises(ValueError):
            SyntheticFLSpec(test_fraction=0.0)

    def test_rejects_bad_sample_bounds(self):
        with pytest.raises(ValueError):
            SyntheticFLSpec(min_samples=10, max_samples=5)


class TestSyntheticFLGenerator:
    def test_device_count_and_shapes(self):
        spec = SyntheticFLSpec(num_devices=6, input_dim=12, num_classes=4,
                               min_samples=10, max_samples=50)
        trains, tests = generate_synthetic_fl(spec, np.random.default_rng(0))
        assert len(trains) == 6 and len(tests) == 6
        for tr, te in zip(trains, tests):
            assert tr.input_dim == 12 and te.input_dim == 12
            assert tr.num_classes == 4

    def test_sample_counts_within_bounds(self):
        spec = SyntheticFLSpec(num_devices=10, min_samples=15, max_samples=40)
        trains, tests = generate_synthetic_fl(spec, np.random.default_rng(1))
        for tr, te in zip(trains, tests):
            total = len(tr) + len(te)
            assert 15 <= total <= 40

    def test_labels_valid(self):
        spec = SyntheticFLSpec(num_devices=4)
        trains, _ = generate_synthetic_fl(spec, np.random.default_rng(2))
        for tr in trains:
            assert tr.y.min() >= 0 and tr.y.max() < spec.num_classes

    def test_heterogeneity_devices_differ(self):
        """With alpha=beta=1 devices must have different feature means."""
        spec = SyntheticFLSpec(num_devices=5, min_samples=100, max_samples=100)
        trains, _ = generate_synthetic_fl(spec, np.random.default_rng(3))
        means = np.array([tr.X.mean() for tr in trains])
        assert means.std() > 0.1

    def test_homogeneous_when_alpha_beta_zero(self):
        spec = SyntheticFLSpec(alpha=0.0, beta=0.0, num_devices=5,
                               min_samples=200, max_samples=200)
        trains, _ = generate_synthetic_fl(spec, np.random.default_rng(4))
        means = np.array([tr.X.mean(axis=0) for tr in trains])
        # feature means cluster around a common v_k distribution mean of 0
        assert np.abs(means.mean(axis=0)).mean() < 0.5

    def test_deterministic(self):
        spec = SyntheticFLSpec(num_devices=3)
        a_tr, _ = generate_synthetic_fl(spec, np.random.default_rng(5))
        b_tr, _ = generate_synthetic_fl(spec, np.random.default_rng(5))
        np.testing.assert_array_equal(a_tr[0].X, b_tr[0].X)

    def test_feature_covariance_decays(self):
        """Later feature coordinates must have smaller variance (Σ_jj = j^-1.2)."""
        spec = SyntheticFLSpec(num_devices=1, min_samples=1000, max_samples=1000,
                               beta=0.0)
        trains, tests = generate_synthetic_fl(spec, np.random.default_rng(6))
        X = np.concatenate([trains[0].X, tests[0].X])
        variances = X.var(axis=0)
        assert variances[0] > variances[-1]
