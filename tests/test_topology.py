"""Tests for repro.topology: structure, communication accounting, sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.comm import CommSnapshot, CommunicationTracker
from repro.topology.network import HierarchicalTopology
from repro.topology.sampling import (
    sample_by_weight,
    sample_checkpoint_slot,
    sample_uniform_subset,
)


class TestHierarchicalTopology:
    def test_uniform_constructor(self):
        topo = HierarchicalTopology.uniform(4, 3)
        assert topo.num_edges == 4
        assert topo.num_clients == 12
        assert topo.is_uniform
        assert topo.n0 == 3

    def test_nonuniform(self):
        topo = HierarchicalTopology([2, 3, 1])
        assert topo.num_clients == 6
        assert not topo.is_uniform
        with pytest.raises(ValueError):
            _ = topo.n0

    def test_clients_of_edge(self):
        topo = HierarchicalTopology([2, 3])
        np.testing.assert_array_equal(topo.clients_of_edge(0), [0, 1])
        np.testing.assert_array_equal(topo.clients_of_edge(1), [2, 3, 4])

    def test_edge_of_client(self):
        topo = HierarchicalTopology([2, 3])
        assert topo.edge_of_client(0) == 0
        assert topo.edge_of_client(4) == 1

    def test_index_bounds(self):
        topo = HierarchicalTopology([2])
        with pytest.raises(IndexError):
            topo.clients_of_edge(1)
        with pytest.raises(IndexError):
            topo.edge_of_client(2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HierarchicalTopology([])

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            HierarchicalTopology([2, 0])

    def test_from_dataset_and_validate(self, tiny_image_fed):
        topo = HierarchicalTopology.from_dataset(tiny_image_fed)
        assert topo.num_edges == tiny_image_fed.num_edges
        topo.validate_dataset(tiny_image_fed)

    def test_validate_mismatch_raises(self, tiny_image_fed):
        topo = HierarchicalTopology.uniform(3, 2)
        with pytest.raises(ValueError):
            topo.validate_dataset(tiny_image_fed)

    def test_to_networkx_structure(self):
        topo = HierarchicalTopology.uniform(3, 2)
        g = topo.to_networkx()
        assert g.number_of_nodes() == 1 + 3 + 6
        assert g.number_of_edges() == 3 + 6
        assert g.degree["cloud"] == 3


class TestCommunicationTracker:
    def test_record_and_totals(self):
        t = CommunicationTracker()
        t.record("edge_cloud", "down", count=3, floats=100)
        t.record("edge_cloud", "up", count=3, floats=100)
        snap = t.snapshot()
        assert snap.total_messages == 6
        assert snap.total_floats == 600
        assert snap.total_bytes == 4800

    def test_sync_cycles(self):
        t = CommunicationTracker()
        t.sync_cycle("client_edge", count=4)
        t.sync_cycle("edge_cloud")
        assert t.total_cycles == 5
        assert t.edge_cloud_cycles == 1

    def test_client_cloud_counts_as_cloud_facing(self):
        t = CommunicationTracker()
        t.sync_cycle("client_cloud", count=2)
        assert t.edge_cloud_cycles == 2

    def test_snapshot_immutable_copy(self):
        t = CommunicationTracker()
        t.sync_cycle("edge_cloud")
        snap = t.snapshot()
        t.sync_cycle("edge_cloud")
        assert snap.edge_cloud_cycles == 1
        assert t.edge_cloud_cycles == 2

    def test_reset(self):
        t = CommunicationTracker()
        t.record("client_edge", "up", count=1, floats=10)
        t.sync_cycle("client_edge")
        t.reset()
        assert t.total_cycles == 0
        assert t.total_bytes == 0

    def test_validations(self):
        t = CommunicationTracker()
        with pytest.raises(ValueError):
            t.record("wan", "up")
        with pytest.raises(ValueError):
            t.record("edge_cloud", "sideways")
        with pytest.raises(ValueError):
            t.record("edge_cloud", "up", count=-1)
        with pytest.raises(ValueError):
            t.sync_cycle("lan")

    def test_payload_unit_convention(self):
        # floats are float64-equivalents: a compressed upload recorded via
        # payload_floats must shrink total_bytes by the compression ratio.
        from repro.compression import QSGDQuantizer

        q = QSGDQuantizer(levels=7)  # ceil(log2(15)) = 4 bits per coordinate
        t = CommunicationTracker()
        t.record("edge_cloud", "up", count=1, floats=q.payload_floats(1000))
        snap = t.snapshot()
        assert snap.total_bytes == pytest.approx(
            (1.0 + 1000 * 4 / 64) * 8)
        assert snap.total_bytes < 1000 * 8  # cheaper than full precision

    def test_edge_cloud_bytes_sums_cloud_facing_links(self):
        t = CommunicationTracker()
        t.record("edge_cloud", "down", count=1, floats=10)
        t.record("client_cloud", "up", count=1, floats=5)
        t.record("client_edge", "up", count=1, floats=100)
        snap = t.snapshot()
        assert snap.edge_cloud_bytes == (10 + 5) * 8
        assert snap.total_bytes == (10 + 5 + 100) * 8

    def test_snapshot_diff(self):
        t = CommunicationTracker()
        t.record("edge_cloud", "up", count=2, floats=20)
        t.sync_cycle("edge_cloud")
        before = t.snapshot()
        t.record("edge_cloud", "up", count=1, floats=7)
        t.record("client_edge", "down", count=3, floats=30)
        t.sync_cycle("client_edge")
        delta = t.snapshot().diff(before)
        assert delta.messages["edge_cloud:up"] == 1
        assert delta.floats["edge_cloud:up"] == 7
        assert delta.messages["client_edge:down"] == 3
        assert delta.cycles["client_edge"] == 1
        # Zero deltas are dropped from all three maps, cycles included.
        assert "edge_cloud" not in delta.cycles

    def test_snapshot_diff_union_keys(self):
        """Keys present only in ``earlier`` must not be silently dropped."""
        late = CommSnapshot(cycles={"edge_cloud": 3},
                            messages={"edge_cloud:up": 5},
                            floats={"edge_cloud:up": 50.0})
        early = CommSnapshot(cycles={"edge_cloud": 1, "client_edge": 2},
                             messages={"edge_cloud:up": 5,
                                       "client_edge:down": 4},
                             floats={"edge_cloud:up": 20.0,
                                     "client_edge:down": 40.0})
        delta = late.diff(early)
        # Entries only in ``early`` surface as negated values...
        assert delta.cycles == {"edge_cloud": 2, "client_edge": -2}
        assert delta.messages == {"client_edge:down": -4}
        assert delta.floats == {"edge_cloud:up": 30.0,
                                "client_edge:down": -40.0}
        # ...making reversed diffs exact negations of each other.
        back = early.diff(late)
        assert back.cycles == {k: -v for k, v in delta.cycles.items()}
        assert back.messages == {k: -v for k, v in delta.messages.items()}
        assert back.floats == {k: -v for k, v in delta.floats.items()}

    def test_snapshot_diff_identical_is_empty(self):
        t = CommunicationTracker()
        t.record("edge_cloud", "up", count=2, floats=20)
        snap = t.snapshot()
        delta = snap.diff(snap)
        assert delta.cycles == {} and delta.messages == {} and delta.floats == {}
        assert delta.total_cycles == 0 and delta.total_floats == 0.0


class TestSampleByWeight:
    def test_shape_and_range(self):
        idx = sample_by_weight(np.full(5, 0.2), 8, np.random.default_rng(0))
        assert idx.shape == (8,)
        assert idx.min() >= 0 and idx.max() < 5

    def test_degenerate_weight(self):
        p = np.array([0.0, 1.0, 0.0])
        idx = sample_by_weight(p, 10, np.random.default_rng(0))
        assert np.all(idx == 1)

    def test_empirical_frequencies_match_p(self):
        p = np.array([0.5, 0.3, 0.2])
        idx = sample_by_weight(p, 30000, np.random.default_rng(0))
        freq = np.bincount(idx, minlength=3) / idx.size
        np.testing.assert_allclose(freq, p, atol=0.02)

    def test_validations(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_by_weight(np.array([]), 1, gen)
        with pytest.raises(ValueError):
            sample_by_weight(np.array([0.5, 0.5]), 0, gen)
        with pytest.raises(ValueError):
            sample_by_weight(np.array([0.9, -0.1]), 1, gen)
        with pytest.raises(ValueError):
            sample_by_weight(np.array([0.2, 0.2]), 1, gen)  # sums to 0.4

    def test_tiny_negative_rounding_tolerated(self):
        p = np.array([1.0 + 1e-10, -1e-10])
        idx = sample_by_weight(p, 5, np.random.default_rng(0))
        assert np.all(idx == 0)


class TestSampleUniformSubset:
    def test_no_replacement(self):
        sub = sample_uniform_subset(10, 10, np.random.default_rng(0))
        assert len(np.unique(sub)) == 10

    def test_subset_size(self):
        assert sample_uniform_subset(10, 4, np.random.default_rng(0)).shape == (4,)

    def test_validations(self):
        gen = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_uniform_subset(0, 1, gen)
        with pytest.raises(ValueError):
            sample_uniform_subset(5, 6, gen)
        with pytest.raises(ValueError):
            sample_uniform_subset(5, 0, gen)

    def test_uniform_coverage(self):
        counts = np.zeros(6)
        gen = np.random.default_rng(1)
        for _ in range(6000):
            counts[sample_uniform_subset(6, 2, gen)] += 1
        freq = counts / counts.sum()
        np.testing.assert_allclose(freq, np.full(6, 1 / 6), atol=0.02)


class TestCheckpointSlot:
    @settings(max_examples=60, deadline=None)
    @given(tau1=st.integers(1, 6), tau2=st.integers(1, 6),
           seed=st.integers(0, 100))
    def test_property_in_range(self, tau1, tau2, seed):
        c1, c2 = sample_checkpoint_slot(tau1, tau2, np.random.default_rng(seed))
        assert 1 <= c1 <= tau1
        assert 0 <= c2 < tau2

    def test_uniform_over_slots(self):
        gen = np.random.default_rng(0)
        tau1, tau2 = 3, 4
        counts = np.zeros((tau1, tau2))
        n = 24000
        for _ in range(n):
            c1, c2 = sample_checkpoint_slot(tau1, tau2, gen)
            counts[c1 - 1, c2] += 1
        np.testing.assert_allclose(counts / n, np.full((tau1, tau2), 1 / 12),
                                   atol=0.01)

    def test_degenerate(self):
        assert sample_checkpoint_slot(1, 1, np.random.default_rng(0)) == (1, 0)

    def test_validations(self):
        with pytest.raises(ValueError):
            sample_checkpoint_slot(0, 1, np.random.default_rng(0))
