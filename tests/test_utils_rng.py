"""Tests for repro.utils.rng: determinism, independence, stability of streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import RngFactory, as_generator, spawn_generators, stable_key


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("cloud") == stable_key("cloud")

    def test_distinct_names(self):
        assert stable_key("cloud") != stable_key("client")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_key("anything") < 2**64


class TestAsGenerator:
    def test_from_int(self):
        g = as_generator(3)
        assert isinstance(g, np.random.Generator)

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        g = as_generator(np.random.SeedSequence(5))
        assert isinstance(g, np.random.Generator)

    def test_same_int_same_stream(self):
        a = as_generator(9).random(4)
        b = as_generator(9).random(4)
        np.testing.assert_array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_zero_is_allowed(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_streams_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.allclose(a.random(8), b.random(8))

    def test_deterministic(self):
        a1, _ = spawn_generators(42, 2)
        a2, _ = spawn_generators(42, 2)
        np.testing.assert_array_equal(a1.random(8), a2.random(8))


class TestRngFactory:
    def test_stream_reproducible(self):
        f = RngFactory(seed=1)
        x = f.stream("cloud").random(5)
        y = f.stream("cloud").random(5)
        np.testing.assert_array_equal(x, y)

    def test_distinct_names_distinct_streams(self):
        f = RngFactory(seed=1)
        assert not np.allclose(f.stream("a").random(8), f.stream("b").random(8))

    def test_distinct_seeds_distinct_streams(self):
        assert not np.allclose(RngFactory(0).stream("a").random(8),
                               RngFactory(1).stream("a").random(8))

    def test_streams_count_and_independence(self):
        f = RngFactory(seed=2)
        gens = f.streams("client", 4)
        assert len(gens) == 4
        draws = [g.random(6) for g in gens]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_streams_match_individual_indexing(self):
        f = RngFactory(seed=2)
        a = f.streams("client", 3)[1].random(4)
        b = f.streams("client", 5)[1].random(4)
        np.testing.assert_array_equal(a, b)

    def test_streams_negative_raises(self):
        with pytest.raises(ValueError):
            RngFactory(0).streams("x", -2)

    def test_iter_streams_prefix_matches_streams(self):
        f = RngFactory(seed=3)
        it = f.iter_streams("worker")
        fixed = f.streams("worker", 3)
        for expected in fixed:
            got = next(it)
            np.testing.assert_array_equal(got.random(4), expected.random(4))

    def test_child_factories_differ(self):
        f = RngFactory(seed=4)
        a = f.child("round0").stream("x").random(4)
        b = f.child("round1").stream("x").random(4)
        assert not np.allclose(a, b)

    def test_seed_property(self):
        assert RngFactory(seed=77).seed == 77
