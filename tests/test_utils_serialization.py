"""Tests for repro.utils.serialization: JSON round-trips of experiment results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "x"):
            assert to_jsonable(v) == v

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True

    def test_array_envelope(self):
        out = to_jsonable(np.arange(6).reshape(2, 3))
        assert out["shape"] == [2, 3]
        assert out["__ndarray__"] == [[0, 1, 2], [3, 4, 5]]

    def test_nested_structures(self):
        out = to_jsonable({"a": [np.float64(1.0), {"b": (1, 2)}]})
        assert out == {"a": [1.0, {"b": [1, 2]}]}

    def test_dataclass(self):
        @dataclass
        class Point:
            x: float
            y: float

        assert to_jsonable(Point(1.0, 2.0)) == {"x": 1.0, "y": 2.0}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestRoundTrip:
    def test_array_roundtrip(self):
        arr = np.linspace(0, 1, 7).reshape(7, 1)
        back = from_jsonable(to_jsonable(arr))
        np.testing.assert_array_almost_equal(back, arr)
        assert back.shape == arr.shape

    def test_nested_roundtrip(self):
        obj = {"history": [{"acc": np.array([0.1, 0.2])}, {"acc": np.array([0.3])}]}
        back = from_jsonable(to_jsonable(obj))
        np.testing.assert_array_equal(back["history"][0]["acc"], [0.1, 0.2])

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "res.json"
        payload = {"x": np.arange(3), "meta": {"seed": 7}}
        save_json(path, payload)
        loaded = load_json(path)
        np.testing.assert_array_equal(loaded["x"], [0, 1, 2])
        assert loaded["meta"]["seed"] == 7

    def test_save_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.json"
        save_json(path, {"ok": 1})
        assert path.exists()
