"""Tests for repro.utils.serialization: JSON round-trips of experiment results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import from_jsonable, load_json, save_json, to_jsonable


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "x"):
            assert to_jsonable(v) == v

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True

    def test_array_envelope(self):
        out = to_jsonable(np.arange(6).reshape(2, 3))
        assert out["shape"] == [2, 3]
        assert out["__ndarray__"] == [[0, 1, 2], [3, 4, 5]]

    def test_nested_structures(self):
        out = to_jsonable({"a": [np.float64(1.0), {"b": (1, 2)}]})
        assert out == {"a": [1.0, {"b": [1, 2]}]}

    def test_dataclass(self):
        @dataclass
        class Point:
            x: float
            y: float

        assert to_jsonable(Point(1.0, 2.0)) == {"x": 1.0, "y": 2.0}

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestRoundTrip:
    def test_array_roundtrip(self):
        arr = np.linspace(0, 1, 7).reshape(7, 1)
        back = from_jsonable(to_jsonable(arr))
        np.testing.assert_array_almost_equal(back, arr)
        assert back.shape == arr.shape

    def test_nested_roundtrip(self):
        obj = {"history": [{"acc": np.array([0.1, 0.2])}, {"acc": np.array([0.3])}]}
        back = from_jsonable(to_jsonable(obj))
        np.testing.assert_array_equal(back["history"][0]["acc"], [0.1, 0.2])

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "out" / "res.json"
        payload = {"x": np.arange(3), "meta": {"seed": 7}}
        save_json(path, payload)
        loaded = load_json(path)
        np.testing.assert_array_equal(loaded["x"], [0, 1, 2])
        assert loaded["meta"]["seed"] == 7

    def test_save_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "c.json"
        save_json(path, {"ok": 1})
        assert path.exists()


class TestGeneratorRoundTrip:
    """np.random.Generator state must survive JSON exactly (checkpoints)."""

    def test_stream_continues_identically(self):
        gen = np.random.default_rng(42)
        gen.random(17)  # advance past the seed point
        back = from_jsonable(to_jsonable(gen))
        assert isinstance(back, np.random.Generator)
        reference = np.random.default_rng(42)
        reference.random(17)
        np.testing.assert_array_equal(back.random(32), reference.random(32))

    def test_state_survives_a_real_json_file(self, tmp_path):
        gen = np.random.default_rng(7)
        gen.integers(0, 100, size=5)
        path = tmp_path / "gen.json"
        save_json(path, {"rng": gen})
        back = load_json(path)["rng"]
        assert back.bit_generator.state == gen.bit_generator.state

    def test_nested_checkpoint_shaped_payload(self, tmp_path):
        from repro.topology.comm import CommSnapshot

        payload = {
            "round": 12,
            "w": np.linspace(-1, 1, 9),
            "rng": np.random.default_rng(3),
            "comm": CommSnapshot(cycles={"edge_cloud": 24},
                                 messages={"edge_cloud:up": 60},
                                 floats={"edge_cloud:up": 540.0}),
            "clients": {"0": {"rng": np.random.default_rng(5), "cursor": 3}},
        }
        path = tmp_path / "ckpt.json"
        save_json(path, payload)
        back = load_json(path)
        assert back["round"] == 12
        np.testing.assert_array_equal(back["w"], payload["w"])
        assert back["comm"]["cycles"]["edge_cloud"] == 24
        assert back["clients"]["0"]["cursor"] == 3
        assert back["clients"]["0"]["rng"].bit_generator.state == \
            payload["clients"]["0"]["rng"].bit_generator.state


class TestLoadErrors:
    def test_corrupted_file_names_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"truncated": [1, 2')
        with pytest.raises(ValueError, match="broken.json"):
            load_json(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_json(tmp_path / "nope.json")
