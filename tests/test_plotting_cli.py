"""Tests for the ASCII plotting module and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.plotting.ascii import ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        x = np.arange(10, dtype=float)
        out = ascii_plot({"a": (x, x**2)}, title="t", xlabel="x")
        assert "t" in out and "legend: o a" in out
        assert "|" in out and "+--" in out

    def test_multiple_series_distinct_markers(self):
        x = np.arange(5, dtype=float)
        out = ascii_plot({"one": (x, x), "two": (x, 4 - x)})
        assert "o one" in out and "x two" in out
        assert "o" in out and "x" in out

    def test_constant_series_ok(self):
        x = np.arange(5, dtype=float)
        out = ascii_plot({"flat": (x, np.full(5, 2.0))})
        assert "flat" in out

    def test_single_point_ok(self):
        out = ascii_plot({"dot": (np.array([1.0]), np.array([2.0]))})
        assert "dot" in out

    def test_nan_points_skipped(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, np.nan, 2.0])
        out = ascii_plot({"a": (x, y)})
        assert "a" in out

    def test_validations(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": (np.arange(3.0), np.arange(4.0))})
        with pytest.raises(ValueError):
            ascii_plot({"a": (np.array([np.nan]), np.array([np.nan]))})
        with pytest.raises(ValueError):
            ascii_plot({"a": (np.arange(3.0), np.arange(3.0))}, width=4)

    def test_axis_ranges_in_output(self):
        x = np.array([0.0, 100.0])
        y = np.array([0.25, 0.75])
        out = ascii_plot({"a": (x, y)})
        assert "100" in out and "0.75" in out


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        for cmd in ("fig3", "fig4", "table1", "table2", "tradeoff", "info"):
            args = parser.parse_args([cmd] if cmd in ("info",) else
                                     [cmd, "--scale", "tiny"]
                                     if cmd in ("fig3", "fig4", "table2")
                                     else [cmd])
            assert args.command == cmd

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "HierMinimax" in out and "hierminimax" in out

    def test_table1(self, capsys):
        assert main(["table1", "--horizon", "1000", "--alpha", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "DRFA" in out and "Stochastic-AFL" in out

    def test_table2_unknown_dataset_rejected(self, capsys):
        assert main(["table2", "--scale", "tiny", "--datasets", "cifar"]) == 2

    def test_table2_single_dataset(self, capsys, tmp_path):
        out_file = tmp_path / "rows.json"
        code = main(["table2", "--scale", "tiny", "--datasets", "adult",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "adult" in out

    def test_fig3_tiny_with_plot_and_out(self, capsys, tmp_path):
        out_file = tmp_path / "fig3.json"
        code = main(["fig3", "--scale", "tiny", "--seeds", "1", "--plot",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "rounds to target" in out
        assert "legend:" in out  # the ASCII plot

    def test_tradeoff(self, capsys):
        assert main(["tradeoff", "--horizon", "64", "--alphas", "0.0", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "duality gap" in out
