"""Tests for repro.ops.numerics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ops.numerics import (
    clip_by_norm,
    flat_norm,
    log_softmax,
    logsumexp,
    one_hot,
    softmax,
    weighted_average,
)

logit_matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(2, 8)),
    elements=st.floats(-30, 30, allow_nan=False),
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        s = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(s.sum(axis=1), [1.0, 1.0])

    def test_uniform_for_equal_logits(self):
        np.testing.assert_allclose(softmax(np.zeros((1, 4))), np.full((1, 4), 0.25))

    def test_stability_with_huge_logits(self):
        s = softmax(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(s))
        assert s[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self):
        z = np.array([[1.0, 2.0, -1.0]])
        np.testing.assert_allclose(softmax(z), softmax(z + 100.0))

    @settings(max_examples=100, deadline=None)
    @given(z=logit_matrices)
    def test_property_simplex_rows(self, z):
        s = softmax(z)
        assert np.all(s >= 0)
        np.testing.assert_allclose(s.sum(axis=1), np.ones(z.shape[0]), atol=1e-9)


class TestLogSoftmaxAndLogSumExp:
    def test_log_softmax_consistency(self):
        z = np.array([[0.3, -1.2, 2.0]])
        np.testing.assert_allclose(np.exp(log_softmax(z)), softmax(z))

    def test_logsumexp_matches_naive_small(self):
        z = np.array([0.1, 0.2, 0.3])
        assert logsumexp(z) == pytest.approx(np.log(np.exp(z).sum()))

    def test_logsumexp_stable(self):
        assert np.isfinite(logsumexp(np.array([1e4, 1e4])))

    def test_logsumexp_keepdims(self):
        out = logsumexp(np.zeros((2, 3)), axis=1, keepdims=True)
        assert out.shape == (2, 1)

    @settings(max_examples=100, deadline=None)
    @given(z=logit_matrices)
    def test_property_logsumexp_bounds(self, z):
        """max <= logsumexp <= max + log(n)."""
        lse = logsumexp(z, axis=1)
        zmax = z.max(axis=1)
        assert np.all(lse >= zmax - 1e-9)
        assert np.all(lse <= zmax + np.log(z.shape[1]) + 1e-9)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)

    def test_empty(self):
        assert one_hot(np.array([], dtype=int), 4).shape == (0, 4)


class TestClipByNorm:
    def test_inside_untouched(self):
        v = np.array([0.3, 0.4])
        assert clip_by_norm(v, 1.0) is v

    def test_outside_scaled(self):
        out = clip_by_norm(np.array([3.0, 4.0]), 1.0)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    def test_zero_vector_ok(self):
        np.testing.assert_array_equal(clip_by_norm(np.zeros(3), 1.0), np.zeros(3))

    def test_bad_max_norm(self):
        with pytest.raises(ValueError):
            clip_by_norm(np.ones(2), 0.0)


class TestWeightedAverage:
    def test_uniform_default(self):
        v = np.array([[0.0, 0.0], [2.0, 4.0]])
        np.testing.assert_allclose(weighted_average(v), [1.0, 2.0])

    def test_weights_normalized(self):
        v = np.array([[0.0], [10.0]])
        np.testing.assert_allclose(weighted_average(v, np.array([1.0, 3.0])), [7.5])

    def test_single_row(self):
        np.testing.assert_allclose(weighted_average(np.array([[5.0, 6.0]])), [5.0, 6.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_average(np.zeros((0, 3)))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_average(np.ones((2, 2)), np.array([1.0, -1.0]))

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_average(np.ones((2, 2)), np.zeros(2))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_average(np.ones((2, 2)), np.ones(3))

    @settings(max_examples=100, deadline=None)
    @given(m=hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 5), st.integers(1, 4)),
                        elements=st.floats(-10, 10, allow_nan=False)))
    def test_property_in_convex_hull_bounds(self, m):
        avg = weighted_average(m)
        assert np.all(avg <= m.max(axis=0) + 1e-9)
        assert np.all(avg >= m.min(axis=0) - 1e-9)


class TestFlatNorm:
    def test_matrix(self):
        assert flat_norm(np.array([[3.0], [4.0]])) == pytest.approx(5.0)
