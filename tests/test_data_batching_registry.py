"""Tests for minibatch sampling and the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.batching import MinibatchSampler
from repro.data.dataset import Dataset
from repro.data.registry import DATASET_NAMES, SCALES, make_federated_dataset


def _ds(n=10, d=2, classes=2, seed=0):
    gen = np.random.default_rng(seed)
    # encode the row index into the features so batches are traceable
    X = np.arange(n, dtype=np.float64)[:, None] * np.ones((1, d))
    return Dataset(X, gen.integers(0, classes, size=n), classes)


class TestMinibatchSampler:
    def test_batch_shape(self):
        s = MinibatchSampler(_ds(10), 3, np.random.default_rng(0))
        X, y = s.next_batch()
        assert X.shape == (3, 2) and y.shape == (3,)

    def test_batch_size_clamped_to_shard(self):
        s = MinibatchSampler(_ds(4), 100, np.random.default_rng(0))
        X, _ = s.next_batch()
        assert X.shape[0] == 4

    def test_epoch_without_replacement(self):
        """Within one epoch every sample appears exactly once."""
        s = MinibatchSampler(_ds(12), 4, np.random.default_rng(0))
        seen = np.concatenate([s.next_batch()[0][:, 0] for _ in range(3)])
        np.testing.assert_array_equal(np.sort(seen), np.arange(12))

    def test_wraparound_batches_full_size(self):
        s = MinibatchSampler(_ds(5), 3, np.random.default_rng(0))
        for _ in range(4):
            X, _ = s.next_batch()
            assert X.shape[0] == 3

    def test_two_epochs_cover_all_twice(self):
        s = MinibatchSampler(_ds(6), 3, np.random.default_rng(1))
        seen = np.concatenate([s.next_batch()[0][:, 0] for _ in range(4)])
        counts = np.bincount(seen.astype(int), minlength=6)
        np.testing.assert_array_equal(counts, np.full(6, 2))

    def test_deterministic_given_rng(self):
        a = MinibatchSampler(_ds(10), 3, np.random.default_rng(5))
        b = MinibatchSampler(_ds(10), 3, np.random.default_rng(5))
        for _ in range(5):
            Xa, _ = a.next_batch()
            Xb, _ = b.next_batch()
            np.testing.assert_array_equal(Xa, Xb)

    def test_counts_batches(self):
        s = MinibatchSampler(_ds(10), 2, np.random.default_rng(0))
        for _ in range(7):
            s.next_batch()
        assert s.batches_drawn == 7

    def test_iter_protocol(self):
        s = MinibatchSampler(_ds(10), 2, np.random.default_rng(0))
        it = iter(s)
        X, y = next(it)
        assert X.shape == (2, 2)

    def test_rejects_empty_dataset(self):
        empty = Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), 2)
        with pytest.raises(ValueError):
            MinibatchSampler(empty, 1, np.random.default_rng(0))

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            MinibatchSampler(_ds(), 0, np.random.default_rng(0))


class TestRegistry:
    def test_all_names_build_at_tiny_scale(self):
        for name in DATASET_NAMES:
            fed = make_federated_dataset(name, seed=0, scale="tiny")
            assert fed.num_edges >= 1
            assert fed.num_clients >= fed.num_edges

    def test_paper_topology_defaults(self):
        fed = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
        assert fed.num_edges == 10
        assert fed.clients_per_edge() == [3] * 10

    def test_adult_two_edges(self):
        fed = make_federated_dataset("adult", seed=0, scale="tiny")
        assert fed.num_edges == 2
        assert fed.num_classes == 2

    def test_synthetic_devices_scale(self):
        fed = make_federated_dataset("synthetic", seed=0, scale="tiny")
        assert fed.num_edges == SCALES["tiny"].synthetic_devices

    def test_similarity_partition_option(self):
        fed = make_federated_dataset("fashion_mnist", seed=0, scale="tiny",
                                     partition="similarity", similarity=0.5)
        assert fed.num_edges == 10

    def test_topology_overrides(self):
        fed = make_federated_dataset("mnist", seed=0, scale="tiny", num_edges=5,
                                     clients_per_edge=2)
        assert fed.num_edges == 5
        assert fed.clients_per_edge() == [2] * 5

    def test_deterministic_by_seed(self):
        a = make_federated_dataset("mnist", seed=3, scale="tiny")
        b = make_federated_dataset("mnist", seed=3, scale="tiny")
        np.testing.assert_array_equal(a.edges[0].clients[0].X,
                                      b.edges[0].clients[0].X)

    def test_different_seed_differs(self):
        a = make_federated_dataset("mnist", seed=3, scale="tiny")
        b = make_federated_dataset("mnist", seed=4, scale="tiny")
        assert not np.array_equal(a.edges[0].clients[0].X, b.edges[0].clients[0].X)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_federated_dataset("imagenet", seed=0)

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            make_federated_dataset("mnist", seed=0, scale="huge")

    def test_unknown_partition_raises(self):
        with pytest.raises(ValueError):
            make_federated_dataset("mnist", seed=0, scale="tiny", partition="sorted")

    def test_image_edges_hold_one_class_each(self):
        fed = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
        for e, edge in enumerate(fed.edges):
            np.testing.assert_array_equal(np.unique(edge.train_pool().y), [e])
