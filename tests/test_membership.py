"""Tests for repro.membership: churn plans, the self-healing hierarchy, and
the bit-identicality / resume guarantees of the dynamic-membership layer.

The load-bearing guarantees:

* a null :class:`ChurnPlan` (or no ``churn=`` argument at all) is
  **bit-identical** to the static-topology code paths, for every algorithm
  and every execution backend,
* every membership transition is a pure function of
  ``(plan.seed, round, entity)`` — independent of algorithm, tracer, or
  resume boundary,
* checkpoints capture the live topology, so a run killed across a failover
  boundary resumes bit-identically, and
* the membership ledger balances: arrivals minus departures equal the net
  change of the active population.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import make_blob_fed
from repro.baselines.registry import ALGORITHMS, make_algorithm
from repro.core.hierminimax import HierMinimax
from repro.exec import resolve_backend
from repro.faults import FaultPlan, RetryPolicy, resolve_injector
from repro.membership import (
    ChurnPlan,
    MembershipManager,
    NullMembership,
    NULL_MEMBERSHIP,
    resolve_membership,
)
from repro.multilayer import MultiLevelHierMinimax
from repro.nn.models import make_model_factory
from repro.obs import Tracer, analyze_trace, format_trace_report
from repro.sim.builder import build_edge_servers
from repro.utils.rng import RngFactory


def make_edges(fed):
    return build_edge_servers(fed, batch_size=4, rng_factory=RngFactory(0))

CHURN_SPEC = "arrive=0.08,depart=0.05,edge_mttf=4,edge_mttr=3,seed=1"


def make_hmm(fed, factory, **kw):
    return HierMinimax(fed, factory, batch_size=4, eta_w=0.1, eta_p=0.05,
                       tau1=2, tau2=2, m_edges=2, seed=0, **kw)


def history_points(result):
    return [(p.round_index, p.record.worst_accuracy, p.record.average_accuracy)
            for p in result.history.points]


# --------------------------------------------------------------------- plan
class TestChurnPlan:
    def test_none_is_null(self):
        assert ChurnPlan.none().is_null
        assert ChurnPlan().is_null
        assert not ChurnPlan(arrive=0.1).is_null
        assert not ChurnPlan(edge_mttf=40.0).is_null
        assert not ChurnPlan(link_mttf=40.0).is_null
        assert not ChurnPlan(start_absent=0.5).is_null

    def test_parse_round_trip(self):
        plan = ChurnPlan.parse("arrive=0.05, depart=0.02, edge_mttf=40, "
                               "edge_mttr=4, link_mttf=60, link_mttr=2, "
                               "heartbeat_timeout_s=0.25, rehome=false, "
                               "start_absent=0.1, seed=3")
        assert plan.arrive == 0.05
        assert plan.depart == 0.02
        assert plan.edge_mttf == 40.0
        assert plan.edge_mttr == 4.0
        assert plan.link_mttf == 60.0
        assert plan.link_mttr == 2.0
        assert plan.heartbeat_timeout_s == 0.25
        assert plan.rehome is False
        assert plan.start_absent == 0.1
        assert plan.seed == 3

    def test_parse_empty_is_null(self):
        assert ChurnPlan.parse("").is_null
        assert ChurnPlan.parse("  ").is_null

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown churn"):
            ChurnPlan.parse("arive=0.05")

    def test_parse_rejects_malformed_entry(self):
        with pytest.raises(ValueError):
            ChurnPlan.parse("arrive")

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnPlan(arrive=1.5)
        with pytest.raises(ValueError):
            ChurnPlan(depart=-0.1)
        with pytest.raises(ValueError):
            ChurnPlan(edge_mttf=0.5)  # 0 (off) or >= 1
        with pytest.raises(ValueError):
            ChurnPlan(edge_mttf=10.0, edge_mttr=0.5)
        with pytest.raises(ValueError):
            ChurnPlan(heartbeat_timeout_s=-1.0)

    def test_faultplan_carries_churn(self):
        plan = FaultPlan.parse(
            "client_dropout=0.1,churn_arrive=0.05,churn_depart=0.02,"
            "churn_edge_mttf=40,churn_seed=2")
        assert plan.has_churn
        assert plan.churn.arrive == 0.05
        assert plan.churn.depart == 0.02
        assert plan.churn.edge_mttf == 40.0
        assert plan.churn.seed == 2
        # churn alone does not arm the fault injector.
        assert FaultPlan.parse("churn_arrive=0.05").is_null
        assert not FaultPlan.parse("churn_arrive=0.05").has_churn is None

    def test_faultplan_rejects_bad_churn_key(self):
        with pytest.raises(ValueError, match="unknown churn"):
            FaultPlan.parse("churn_bogus=1")


# ------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_max_backoff_cap(self):
        pol = RetryPolicy(backoff_base_s=0.1, backoff_factor=10.0,
                          max_backoff_s=0.5)
        assert pol.backoff_s(0) == pytest.approx(0.1)
        assert pol.backoff_s(1) == pytest.approx(0.5)
        assert pol.backoff_s(5) == pytest.approx(0.5)

    def test_uncapped_matches_legacy_schedule(self):
        pol = RetryPolicy(backoff_base_s=0.05, backoff_factor=2.0)
        for n in range(6):
            assert pol.backoff_s(n) == pytest.approx(0.05 * 2.0 ** n)

    def test_jitter_is_pure_and_bounded(self):
        pol = RetryPolicy(backoff_base_s=0.1, backoff_factor=2.0, jitter=0.5)
        a = pol.backoff_s(1, seed=7, round_index=3, entity="client:2")
        b = pol.backoff_s(1, seed=7, round_index=3, entity="client:2")
        assert a == b  # pure function of (seed, round, entity, attempt)
        base = 0.2
        assert base * 0.5 <= a <= base * 1.5
        # Different entity / round / attempt de-synchronize.
        c = pol.backoff_s(1, seed=7, round_index=3, entity="client:3")
        d = pol.backoff_s(1, seed=7, round_index=4, entity="client:2")
        assert len({a, c, d}) > 1

    def test_jitter_off_without_seed(self):
        pol = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        assert pol.backoff_s(0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_parse_via_faultplan(self):
        plan = FaultPlan.parse("msg_loss=0.1,max_retries=3,"
                               "max_backoff_s=0.4,jitter=0.25")
        assert plan.retry.max_retries == 3
        assert plan.retry.max_backoff_s == 0.4
        assert plan.retry.jitter == 0.25


# ---------------------------------------------------------------- resolver
class TestResolveMembership:
    def test_none_and_null_share_instance(self):
        assert resolve_membership(None) is NULL_MEMBERSHIP
        assert resolve_membership("") is NULL_MEMBERSHIP
        assert resolve_membership(ChurnPlan.none()) is NULL_MEMBERSHIP

    def test_spec_and_plan(self):
        m = resolve_membership("arrive=0.1,seed=2")
        assert isinstance(m, MembershipManager)
        assert m.enabled and m.plan.arrive == 0.1
        assert resolve_membership(m) is m

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_membership(42)

    def test_begin_round_before_bind_raises(self):
        m = MembershipManager(ChurnPlan(arrive=0.1))
        with pytest.raises(RuntimeError, match="bind"):
            m.begin_round(0)


# ---------------------------------------------------------------- manager
class TestManagerTransitions:
    def _bound_manager(self, plan=None, **kw):
        fed = make_blob_fed(num_edges=3, clients_per_edge=2)
        edges = make_edges(fed)
        mgr = MembershipManager(plan if plan is not None
                                else ChurnPlan(**kw))
        mgr.bind(edges)
        return mgr

    def test_transitions_deterministic(self):
        runs = []
        for _ in range(2):
            mgr = self._bound_manager(arrive=0.2, depart=0.2, edge_mttf=3,
                                      edge_mttr=2, link_mttf=4, seed=5)
            for k in range(20):
                mgr.begin_round(k)
            runs.append(mgr.state_dict())
        assert runs[0] == runs[1]

    def test_start_absent_thins_population(self):
        mgr = self._bound_manager(start_absent=0.5, arrive=0.1, seed=3)
        assert 0 < len(mgr.active) < len(mgr._client_ids)

    def test_rehoming_moves_orphans_to_least_loaded_survivor(self):
        mgr = self._bound_manager(edge_mttf=10, seed=0)
        # Manually crash edge 0 and re-home.
        mgr.edge_up[0] = False
        mgr._rehome_orphans(0, 0, None, None, 0)
        orphans = [cid for cid, eid in mgr._initial_home.items() if eid == 0]
        for cid in orphans:
            assert mgr.home[cid] != 0
            assert mgr.edge_up[mgr.home[cid]]
        # Load balance: 2 orphans over 2 survivors -> one each.
        homes = sorted(mgr.home[cid] for cid in orphans)
        assert homes == [1, 2]
        # Rosters reflect the move.
        for cid in orphans:
            roster_ids = [c.client_id for c in mgr.roster(mgr.home[cid])]
            assert cid in roster_ids
        assert all(c.client_id not in orphans for c in mgr.roster(0))

    def test_no_survivors_keeps_homes(self):
        mgr = self._bound_manager(edge_mttf=10, seed=0)
        for e in mgr.edge_up:
            mgr.edge_up[e] = False
        before = dict(mgr.home)
        mgr._rehome_orphans(0, 0, None, None, 0)
        assert mgr.home == before

    def test_partitioned_edge_keeps_clients(self):
        mgr = self._bound_manager(link_mttf=10, seed=0)
        mgr.partitioned.add(1)
        assert not mgr.edge_available(1)
        # Partition (unlike crash) never re-homes: clients stay put.
        assert all(eid == mgr._initial_home[cid]
                   for cid, eid in mgr.home.items())

    def test_state_dict_round_trip(self):
        mgr = self._bound_manager(arrive=0.2, depart=0.2, edge_mttf=3,
                                  link_mttf=4, seed=9)
        for k in range(15):
            mgr.begin_round(k)
        state = mgr.state_dict()
        other = self._bound_manager(arrive=0.2, depart=0.2, edge_mttf=3,
                                    link_mttf=4, seed=9)
        other.load_state_dict(state)
        assert other.state_dict() == state
        # Resumed manager continues identically.
        mgr.begin_round(15)
        other.begin_round(15)
        assert mgr.state_dict() == other.state_dict()

    def test_empty_state_is_noop(self):
        mgr = self._bound_manager(arrive=0.2, seed=1)
        before = mgr.state_dict()
        mgr.load_state_dict({})
        assert mgr.state_dict() == before


# ---------------------------------------------- null-churn bit-identicality
class TestNullChurnBitIdentical:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms_serial(self, name):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        base = make_algorithm(name, fed, factory, seed=0, batch_size=4,
                              eta_w=0.1).run(rounds=4, eval_every=2)
        for churn in (None, "", ChurnPlan.none()):
            res = make_algorithm(name, fed, factory, seed=0, batch_size=4,
                                 eta_w=0.1, churn=churn,
                                 ).run(rounds=4, eval_every=2)
            np.testing.assert_array_equal(base.final_params,
                                          res.final_params)
            assert history_points(base) == history_points(res)

    def test_multilayer_null_identical(self):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        base = MultiLevelHierMinimax(fed, factory, seed=0, batch_size=4,
                                     ).run(rounds=4, eval_every=2)
        res = MultiLevelHierMinimax(fed, factory, seed=0, batch_size=4,
                                    churn="").run(rounds=4, eval_every=2)
        np.testing.assert_array_equal(base.final_params, res.final_params)

    @pytest.mark.parametrize("backend",
                             ("serial", "thread", "process", "vectorized"))
    def test_every_backend(self, backend):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        be = resolve_backend(backend, 2)
        try:
            for name in sorted(ALGORITHMS):
                base = make_algorithm(name, fed, factory, seed=0,
                                      batch_size=4, backend=be,
                                      ).run(rounds=2, eval_every=2)
                res = make_algorithm(name, fed, factory, seed=0,
                                     batch_size=4, backend=be, churn="",
                                     ).run(rounds=2, eval_every=2)
                np.testing.assert_array_equal(base.final_params,
                                              res.final_params)
        finally:
            be.close()

    def test_live_churn_changes_trajectory(self):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        base = make_hmm(fed, factory).run(rounds=8, eval_every=4)
        res = make_hmm(fed, factory, churn=CHURN_SPEC).run(rounds=8,
                                                           eval_every=4)
        assert not np.array_equal(base.final_params, res.final_params)

    def test_churn_independent_of_backend(self):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        serial = make_hmm(fed, factory, churn=CHURN_SPEC).run(rounds=6,
                                                              eval_every=3)
        be = resolve_backend("thread", 2)
        try:
            threaded = make_hmm(fed, factory, churn=CHURN_SPEC,
                                backend=be).run(rounds=6, eval_every=3)
        finally:
            be.close()
        np.testing.assert_array_equal(serial.final_params,
                                      threaded.final_params)


# ------------------------------------------------ quarantine across failover
class TestQuarantineSurvivesRehoming:
    def test_quarantined_client_stays_quarantined_after_rehome(self):
        fed = make_blob_fed(num_edges=3, clients_per_edge=2)
        edges = make_edges(fed)
        inj = resolve_injector(FaultPlan(msg_corrupt=0.01, seed=0))
        mgr = MembershipManager(ChurnPlan(edge_mttf=10, seed=0))
        mgr.bind(edges)
        inj.quarantine(0, "client:0")
        assert "client:0" in inj.quarantined
        # Edge 0 crashes; client 0 is re-homed to a surviving edge.
        mgr.edge_up[0] = False
        mgr._rehome_orphans(1, 0, None, None, 0)
        new_home = mgr.home[0]
        assert new_home != 0
        # Quarantine keys are global (entity ids, not per-edge), so the
        # ban follows the client to its new edge: it still runs no steps and
        # answers no loss probes there.
        assert "client:0" in inj.quarantined
        assert inj.client_steps(2, 0, tau1=2) == 0
        assert inj.client_available(2, 0) is False
        # An innocent sibling on the new edge is unaffected.
        sib = next(c.client_id for c in mgr.roster(new_home)
                   if c.client_id != 0)
        assert inj.client_steps(2, sib, tau1=2) == 2


# ----------------------------------------------- checkpoint/resume exactness
class TestResumeAcrossFailover:
    #: Churn aggressive enough that edge crashes straddle the kill point.
    PLAN = "arrive=0.1,depart=0.08,edge_mttf=3,edge_mttr=2,seed=2"

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_resume_bit_identical(self, tmp_path, backend):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        be = resolve_backend(backend, 2)
        path = tmp_path / "churn.ckpt.json"
        try:
            obs = Tracer(None)
            full = make_hmm(fed, factory, churn=self.PLAN, obs=obs,
                            backend=be).run(rounds=12, eval_every=3)
            counters = obs.snapshot()["counters"]
            # The scenario must actually exercise failover.
            assert counters.get("membership_edge_crashes_total", 0) > 0

            algo = make_hmm(fed, factory, churn=self.PLAN, backend=be)
            algo.run(rounds=6, eval_every=3)
            algo.save_checkpoint(path)

            resumed = make_hmm(fed, factory, churn=self.PLAN, backend=be)
            done = resumed.load_checkpoint(path)
            assert done == 6
            # The live topology came back with the model.
            assert (resumed.membership.state_dict()
                    == algo.membership.state_dict())
            res = resumed.run(rounds=6, eval_every=3)
        finally:
            be.close()
        np.testing.assert_array_equal(full.final_params, res.final_params)
        np.testing.assert_array_equal(full.final_weights, res.final_weights)
        full_pts = history_points(full)
        assert history_points(res) == full_pts[len(full_pts) - len(
            history_points(res)):]

    def test_stale_checkpoint_without_membership_resumes(self, tmp_path):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        path = tmp_path / "old.ckpt.json"
        algo = make_hmm(fed, factory)
        algo.run(rounds=4, eval_every=2)
        algo.save_checkpoint(path)
        # A churn-free checkpoint loads into a churn-free run unchanged.
        again = make_hmm(fed, factory)
        assert again.load_checkpoint(path) == 4


# ------------------------------------------------------------------- ledger
class TestLedger:
    def test_ledger_balances_and_reports(self, tmp_path):
        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        trace = tmp_path / "churn.trace.jsonl"
        obs = Tracer(str(trace))
        algo = make_hmm(fed, factory, churn=CHURN_SPEC, obs=obs)
        algo.run(rounds=12, eval_every=6)
        final_active = len(algo.membership.active)
        obs.close()

        report = analyze_trace(trace)
        assert report.membership_totals  # events made it into the trace
        assert report.membership_initial >= 0
        assert report.membership_final == final_active
        # joined - left == net population delta (the balance invariant).
        assert (report.members_joined - report.members_left
                == report.membership_net_delta)
        text = format_trace_report(report)
        assert "membership:" in text
        assert "ledger balanced" in text

    def test_sim_time_and_comm_charged(self):
        from repro.simtime import SimTimer, make_cost_model

        fed = make_blob_fed()
        factory = make_model_factory("logistic", fed.input_dim,
                                     fed.num_classes)
        plain = make_hmm(fed, factory,
                         timing=SimTimer(make_cost_model("hetero,seed=1")))
        r0 = plain.run(rounds=10, eval_every=5)
        churned = make_hmm(fed, factory, churn=CHURN_SPEC,
                           timing=SimTimer(make_cost_model("hetero,seed=1")))
        r1 = churned.run(rounds=10, eval_every=5)
        # Failover traffic (heartbeats, handoffs, warm joins) is visible in
        # the comm ledger; detection timeouts and re-syncs on the clock.
        assert r1.sim_time_s != r0.sim_time_s
        assert r0.comm.total_bytes != r1.comm.total_bytes
