"""Tests for the Lemma 1/2 divergence measurement — theory meets simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import make_model_factory
from repro.theory.bounds import (
    HierMinimaxBoundInputs,
    lemma1_divergence_bound,
    lemma2_divergence_bound,
)
from repro.theory.constants import estimate_problem_constants
from repro.theory.divergence import measure_model_divergence

from tests.conftest import make_blob_fed


@pytest.fixture(scope="module")
def fed():
    return make_blob_fed(num_edges=4, clients_per_edge=2, n_per_client=16,
                         dim=4, seed=2)


@pytest.fixture(scope="module")
def factory(fed):
    return make_model_factory("logistic", fed.input_dim, fed.num_classes)


class TestMeasurement:
    def test_returns_nonnegative(self, fed, factory):
        m = measure_model_divergence(fed, factory, eta_w=0.05, tau1=2, tau2=2,
                                     rounds=3, seed=0)
        assert m.mean_squared >= 0.0
        assert m.mean_absolute >= 0.0
        assert m.slots == 12

    def test_jensen_relation(self, fed, factory):
        """mean(|x|)² <= mean(x²) (Jensen) must hold between the two outputs."""
        m = measure_model_divergence(fed, factory, eta_w=0.05, tau1=3, tau2=2,
                                     rounds=3, seed=0)
        assert m.mean_absolute ** 2 <= m.mean_squared + 1e-12

    def test_divergence_grows_with_eta(self, fed, factory):
        lo = measure_model_divergence(fed, factory, eta_w=0.01, tau1=2, tau2=2,
                                      rounds=4, seed=0)
        hi = measure_model_divergence(fed, factory, eta_w=0.1, tau1=2, tau2=2,
                                      rounds=4, seed=0)
        assert hi.mean_squared > lo.mean_squared

    def test_divergence_grows_with_tau(self, fed, factory):
        short = measure_model_divergence(fed, factory, eta_w=0.05, tau1=1,
                                         tau2=1, rounds=6, seed=0)
        long = measure_model_divergence(fed, factory, eta_w=0.05, tau1=4,
                                        tau2=2, rounds=6, seed=0)
        assert long.mean_squared > short.mean_squared

    def test_single_client_single_edge_zero_divergence(self, factory):
        """With one participating client the virtual average IS the local model."""
        solo = make_blob_fed(num_edges=1, clients_per_edge=1, n_per_client=16,
                             dim=4, seed=3)
        solo_factory = make_model_factory("logistic", solo.input_dim,
                                          solo.num_classes)
        m = measure_model_divergence(solo, solo_factory, eta_w=0.1, tau1=3,
                                     tau2=2, rounds=2, seed=0)
        assert m.mean_squared == pytest.approx(0.0, abs=1e-18)

    def test_validations(self, fed, factory):
        with pytest.raises(ValueError):
            measure_model_divergence(fed, factory, eta_w=0.0, tau1=2, tau2=2)
        with pytest.raises(ValueError):
            measure_model_divergence(fed, factory, eta_w=0.1, tau1=2, tau2=2,
                                     m_edges=9)


class TestLemma1Verification:
    def test_measured_below_lemma1_bound(self, fed, factory):
        """The empirical Lemma 1 LHS must sit below the evaluated RHS."""
        eta_w, tau1, tau2 = 0.02, 2, 2
        engine = factory(0)
        constants = estimate_problem_constants(
            fed, engine, num_probes=4, probe_radius=0.3,
            rng=np.random.default_rng(0))
        cfg = HierMinimaxBoundInputs(
            eta_w=eta_w, eta_p=1e-3, tau1=tau1, tau2=tau2, m_edges=4, n0=2,
            n_edges=4, T=64)
        measured = measure_model_divergence(
            fed, factory, eta_w=eta_w, tau1=tau1, tau2=tau2, rounds=8, seed=0)
        bound_sq = lemma1_divergence_bound(cfg, constants)
        bound_abs = lemma2_divergence_bound(cfg, constants)
        assert measured.mean_squared <= bound_sq, (
            f"Lemma 1 violated empirically: {measured.mean_squared:.3e} > "
            f"{bound_sq:.3e}")
        assert measured.mean_absolute <= bound_abs, (
            f"Lemma 2 violated empirically: {measured.mean_absolute:.3e} > "
            f"{bound_abs:.3e}")
