"""Tests for the duality-gap and Moreau-envelope measurement machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.models import logistic_regression
from repro.theory.constants import estimate_problem_constants
from repro.theory.duality import (
    duality_gap,
    edge_losses,
    max_over_simplex,
    weighted_min_loss,
)
from repro.theory.moreau import moreau_envelope, moreau_gradient_norm, phi_value

from tests.conftest import make_blob_fed


@pytest.fixture(scope="module")
def fed():
    return make_blob_fed(num_edges=3, clients_per_edge=2, n_per_client=15,
                         dim=4, seed=1)


@pytest.fixture()
def engine(fed):
    return logistic_regression(fed.input_dim, fed.num_classes, rng=0)


class TestEdgeLosses:
    def test_shape_positive(self, fed, engine):
        losses = edge_losses(engine, engine.get_params(), fed)
        assert losses.shape == (3,)
        assert np.all(losses > 0)

    def test_max_over_simplex(self):
        assert max_over_simplex(np.array([1.0, 3.0, 2.0])) == 3.0

    def test_max_over_simplex_validates(self):
        with pytest.raises(ValueError):
            max_over_simplex(np.array([]))


class TestWeightedMinLoss:
    def test_below_initial_value(self, fed, engine):
        p = np.full(3, 1 / 3)
        w0 = engine.get_params()
        init_value = float(np.dot(p, edge_losses(engine, w0, fed)))
        opt_value = weighted_min_loss(engine, p, fed, max_iters=300)
        assert opt_value < init_value

    def test_single_edge_weight(self, fed, engine):
        """Weight concentrated on one edge minimizes only that edge's loss."""
        p = np.array([1.0, 0.0, 0.0])
        value = weighted_min_loss(engine, p, fed, max_iters=400)
        assert value < 0.1  # separable blob problem: near-zero attainable

    def test_validations(self, fed, engine):
        with pytest.raises(ValueError):
            weighted_min_loss(engine, np.full(2, 0.5), fed)
        with pytest.raises(ValueError):
            weighted_min_loss(engine, np.array([-0.5, 1.0, 0.5]), fed)
        with pytest.raises(ValueError):
            weighted_min_loss(engine, np.zeros(3), fed)


class TestDualityGap:
    def test_nonnegative(self, fed, engine):
        p = np.full(3, 1 / 3)
        gap = duality_gap(engine, engine.get_params(), p, fed, max_iters=300)
        assert gap > -1e-6

    def test_shrinks_with_training(self, fed, engine):
        """Training the uniform-weighted objective must shrink the duality gap."""
        p = np.full(3, 1 / 3)
        w0 = engine.get_params()
        gap_before = duality_gap(engine, w0, p, fed, max_iters=300)
        # crude training: full-batch GD on the uniform mixture
        pools = [e.train_pool() for e in fed.edges]
        w = w0.copy()
        for _ in range(150):
            grad = np.zeros_like(w)
            for pool in pools:
                engine.set_params(w)
                _, g = engine.loss_and_gradient(pool.X, pool.y)
                grad += g / 3
            w -= 0.3 * grad
        gap_after = duality_gap(engine, w, p, fed, max_iters=300)
        assert gap_after < gap_before


class TestMoreau:
    def test_phi_is_max_of_edge_losses(self, fed, engine):
        w = engine.get_params()
        assert phi_value(engine, w, fed) == pytest.approx(
            edge_losses(engine, w, fed).max())

    def test_envelope_below_phi(self, fed, engine):
        """Φ_λ(w) <= Φ(w) always (take x = w in the inf)."""
        w = engine.get_params()
        lam = 0.5
        value, _ = moreau_envelope(engine, w, fed, lam=lam, max_iters=100)
        assert value <= phi_value(engine, w, fed) + 1e-6

    def test_envelope_positive(self, fed, engine):
        value, _ = moreau_envelope(engine, engine.get_params(), fed, lam=0.5,
                                   max_iters=60)
        assert value > 0

    def test_prox_point_improves_objective(self, fed, engine):
        w = engine.get_params()
        lam = 0.5
        _, x_star = moreau_envelope(engine, w, fed, lam=lam, max_iters=150)
        obj_w = phi_value(engine, w, fed)
        obj_x = phi_value(engine, x_star, fed) + \
            0.5 / lam * float((x_star - w) @ (x_star - w))
        assert obj_x <= obj_w + 1e-6

    def test_gradient_norm_matches_prox_formula(self, fed, engine):
        w = engine.get_params()
        lam = 0.5
        _, x_star = moreau_envelope(engine, w, fed, lam=lam, max_iters=100)
        norm = moreau_gradient_norm(engine, w, fed, lam=lam, max_iters=100)
        assert norm == pytest.approx(np.linalg.norm(w - x_star) / lam, rel=1e-6)

    def test_validations(self, fed, engine):
        with pytest.raises(ValueError):
            moreau_envelope(engine, engine.get_params(), fed, lam=0.0)
        with pytest.raises(ValueError):
            moreau_envelope(engine, engine.get_params(), fed, lam=0.5, max_iters=0)


class TestEstimateConstants:
    def test_estimates_positive_and_consistent(self, fed, engine):
        c = estimate_problem_constants(fed, engine, num_probes=3,
                                       rng=np.random.default_rng(0))
        assert c.L > 0
        assert c.G_w > 0
        assert c.G_p > 0
        assert c.sigma_w >= 0
        assert c.psi >= 0
        assert c.R_p == pytest.approx(np.sqrt(2))

    def test_restores_engine_params(self, fed, engine):
        before = engine.get_params()
        estimate_problem_constants(fed, engine, num_probes=2,
                                   rng=np.random.default_rng(0))
        np.testing.assert_array_equal(engine.get_params(), before)

    def test_validations(self, fed, engine):
        with pytest.raises(ValueError):
            estimate_problem_constants(fed, engine, num_probes=0)
        with pytest.raises(ValueError):
            estimate_problem_constants(fed, engine, probe_radius=0.0)

    def test_heterogeneous_psi_larger_than_homogeneous(self, engine, fed):
        """Ψ on a one-class-per-edge layout must exceed Ψ on an iid layout."""
        from repro.data.dataset import EdgeAreaData, FederatedDataset
        from tests.conftest import make_blob_dataset

        pool = make_blob_dataset(30, 3, 4, seed=2)
        gen = np.random.default_rng(0)
        # iid layout: every edge gets a random subset of the same pool
        edges = []
        for e in range(3):
            idx = gen.choice(len(pool), size=20, replace=False)
            shard = pool.subset(idx)
            edges.append(EdgeAreaData([shard], pool.subset(idx[:5])))
        iid_fed = FederatedDataset(edges)
        c_het = estimate_problem_constants(fed, engine, num_probes=3,
                                           rng=np.random.default_rng(1))
        c_iid = estimate_problem_constants(iid_fed, engine, num_probes=3,
                                           rng=np.random.default_rng(1))
        assert c_het.psi > c_iid.psi
