"""Tests for repro.theory: bounds, constants, schedules, Table 1, rate fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.schedules import (
    communication_complexity_order,
    convergence_rate_order,
    split_tau_product,
    tradeoff_schedule,
)
from repro.theory.bounds import (
    HierMinimaxBoundInputs,
    lemma1_divergence_bound,
    lemma1_step_condition,
    lemma2_divergence_bound,
    theorem1_bound,
    theorem2_bound,
)
from repro.theory.constants import ProblemConstants, logistic_smoothness_bound
from repro.theory.rates import fit_power_law, rate_consistency
from repro.theory.table1 import evaluate_row, format_table1, table1_rows


def _constants(**overrides) -> ProblemConstants:
    base = dict(R_w=2.0, R_p=np.sqrt(2), L=1.0, G_w=1.0, G_p=1.0,
                sigma_w=0.5, sigma_p=0.5, psi=0.2)
    base.update(overrides)
    return ProblemConstants(**base)


def _cfg(**overrides) -> HierMinimaxBoundInputs:
    base = dict(eta_w=1e-3, eta_p=1e-3, tau1=2, tau2=2, m_edges=5, n0=3,
                n_edges=10, T=4000)
    base.update(overrides)
    return HierMinimaxBoundInputs(**base)


class TestBoundInputs:
    def test_derived_quantities(self):
        cfg = _cfg()
        assert cfg.m == 15
        assert cfg.rounds == 1000

    def test_validations(self):
        with pytest.raises(ValueError):
            _cfg(tau1=0)
        with pytest.raises(ValueError):
            _cfg(eta_w=0.0)
        with pytest.raises(ValueError):
            _cfg(m_edges=11)


class TestLemmas:
    def test_lemma1_nonnegative(self):
        assert lemma1_divergence_bound(_cfg(), _constants()) > 0

    def test_lemma1_zero_when_homogeneous_and_noiseless(self):
        c = _constants(sigma_w=0.0, psi=0.0)
        assert lemma1_divergence_bound(_cfg(), c) == 0.0

    def test_lemma1_grows_with_tau2(self):
        c = _constants()
        assert lemma1_divergence_bound(_cfg(tau2=4), c) > \
            lemma1_divergence_bound(_cfg(tau2=1), c)

    def test_lemma1_grows_with_eta(self):
        c = _constants()
        assert lemma1_divergence_bound(_cfg(eta_w=1e-2), c) > \
            lemma1_divergence_bound(_cfg(eta_w=1e-3), c)

    def test_lemma2_scales_linearly_in_eta(self):
        c = _constants()
        a = lemma2_divergence_bound(_cfg(eta_w=1e-3), c)
        b = lemma2_divergence_bound(_cfg(eta_w=2e-3), c)
        assert b == pytest.approx(2 * a)

    def test_step_condition_small_eta_ok(self):
        assert lemma1_step_condition(_cfg(eta_w=1e-4), _constants())

    def test_step_condition_large_eta_fails(self):
        assert not lemma1_step_condition(_cfg(eta_w=1.0), _constants(L=10.0))


class TestTheorem1:
    def test_terms_positive_and_total(self):
        bound = theorem1_bound(_cfg(), _constants())
        assert bound.maximization_gap > 0
        assert bound.minimization_gap > 0
        assert bound.client_edge_aggregation > 0
        assert bound.edge_cloud_aggregation > 0
        assert bound.total == pytest.approx(
            bound.maximization_gap + bound.minimization_gap
            + bound.client_edge_aggregation + bound.edge_cloud_aggregation)

    def test_bound_decreases_with_T_at_fixed_lr(self):
        """The 1/T terms shrink while the others are constant."""
        c = _constants()
        assert theorem1_bound(_cfg(T=8000), c).total < \
            theorem1_bound(_cfg(T=2000), c).total

    def test_aggregation_terms_grow_with_periods(self):
        c = _constants()
        small = theorem1_bound(_cfg(tau1=1, tau2=1), c)
        large = theorem1_bound(_cfg(tau1=4, tau2=4), c)
        assert large.edge_cloud_aggregation > small.edge_cloud_aggregation
        assert large.client_edge_aggregation > small.client_edge_aggregation

    def test_scheduled_bound_vanishes_as_T_grows(self):
        """With the §5 learning rates the whole bound must go to zero."""
        c = _constants()
        totals = []
        for T in (10**3, 10**4, 10**5, 10**6):
            sched = tradeoff_schedule(T, 0.25, convex=True)
            cfg = _cfg(T=T, eta_w=sched.eta_w, eta_p=sched.eta_p,
                       tau1=sched.tau1, tau2=sched.tau2)
            totals.append(theorem1_bound(cfg, c).total)
        assert totals == sorted(totals, reverse=True)
        assert totals[-1] < 0.05 * totals[0]

    def test_rate_no_slower_than_theory_exponent(self):
        """The scheduled bound must decay at least as fast as O(1/T^{(1-α)/2}).

        At finite T the minimization-gap terms (decaying at 1/√T) still dominate,
        so the measured slope can be *steeper* than the asymptotic -(1-α)/2; it
        must never be shallower.
        """
        c = _constants()
        alpha = 0.25
        Ts = np.array([10**4, 10**5, 10**6, 10**7])
        gaps = []
        for T in Ts:
            sched = tradeoff_schedule(int(T), alpha, convex=True)
            cfg = _cfg(T=int(T), eta_w=sched.eta_w, eta_p=sched.eta_p,
                       tau1=sched.tau1, tau2=sched.tau2)
            gaps.append(theorem1_bound(cfg, c).total)
        fit = fit_power_law(Ts, np.array(gaps))
        assert rate_consistency(fit.slope, -(1 - alpha) / 2, atol=0.02)
        assert fit.slope >= -0.55  # and not faster than the 1/sqrt(T) floor


class TestTheorem2:
    def test_total_positive(self):
        bound = theorem2_bound(_cfg(), _constants(), phi0=1.0)
        assert bound.total > 0

    def test_rejects_negative_phi0(self):
        with pytest.raises(ValueError):
            theorem2_bound(_cfg(), _constants(), phi0=-1.0)

    def test_scheduled_bound_decreases_with_T(self):
        c = _constants()
        totals = []
        for T in (10**4, 10**6, 10**8):
            sched = tradeoff_schedule(T, 0.25, convex=False)
            cfg = _cfg(T=T, eta_w=sched.eta_w, eta_p=sched.eta_p,
                       tau1=sched.tau1, tau2=sched.tau2)
            totals.append(theorem2_bound(cfg, c, phi0=1.0).total)
        assert totals == sorted(totals, reverse=True)


class TestSchedules:
    def test_split_tau_product(self):
        assert split_tau_product(12) == (4, 3)
        assert split_tau_product(1) == (1, 1)
        assert split_tau_product(7) == (7, 1)

    def test_split_rejects_zero(self):
        with pytest.raises(ValueError):
            split_tau_product(0)

    def test_schedule_product_near_T_alpha(self):
        sched = tradeoff_schedule(10000, 0.5)
        assert sched.tau1 * sched.tau2 == pytest.approx(100, rel=0.05)

    def test_alpha_zero_recovers_afl_scaling(self):
        sched = tradeoff_schedule(10000, 0.0, convex=True)
        assert sched.tau1 == sched.tau2 == 1
        assert sched.eta_w == pytest.approx(1.0 / 100)  # 1/sqrt(T)
        assert sched.eta_p == pytest.approx(1.0 / 100)

    def test_convex_lr_branch_small_alpha(self):
        sched = tradeoff_schedule(10**4, 0.1, convex=True)
        assert sched.eta_w == pytest.approx((10**4) ** -(1 - 0.2))

    def test_communication_decreases_with_alpha(self):
        lo = tradeoff_schedule(10**4, 0.0)
        hi = tradeoff_schedule(10**4, 0.5)
        assert hi.rounds < lo.rounds
        assert hi.edge_cloud_rounds < lo.edge_cloud_rounds

    def test_rate_worsens_with_alpha(self):
        assert convergence_rate_order(10**4, 0.5, convex=True) > \
            convergence_rate_order(10**4, 0.0, convex=True)

    def test_order_helpers_validate(self):
        with pytest.raises(ValueError):
            communication_complexity_order(0, 0.2)
        with pytest.raises(ValueError):
            convergence_rate_order(10, 1.0, convex=True)
        with pytest.raises(ValueError):
            tradeoff_schedule(10, -0.1)


class TestTable1:
    def test_three_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert rows[0].reference.startswith("Stochastic-AFL")
        assert rows[2].alpha_dependent

    def test_only_ours_hierarchical(self):
        rows = table1_rows()
        assert [r.hierarchical for r in rows] == [False, False, True]

    def test_afl_nonconvex_na(self):
        cc, cr = evaluate_row(table1_rows()[0], 1000, convex=False)
        assert cc is None and cr is None

    def test_ours_beats_drfa_communication_at_high_alpha(self):
        rows = table1_rows(alpha=0.5)
        cc_drfa, _ = evaluate_row(rows[1], 10**6, convex=True)
        cc_ours, _ = evaluate_row(rows[2], 10**6, convex=True)
        assert cc_ours < cc_drfa

    def test_alpha_zero_matches_afl_convex(self):
        rows = table1_rows(alpha=0.0)
        cc_afl, cr_afl = evaluate_row(rows[0], 10**4, convex=True)
        cc_ours, cr_ours = evaluate_row(rows[2], 10**4, convex=True)
        assert cc_afl == pytest.approx(cc_ours)
        assert cr_afl == pytest.approx(cr_ours)

    def test_format_includes_all_references(self):
        text = format_table1(alpha=0.25, T=10**5)
        for ref in ("Stochastic-AFL", "DRFA", "HierMinimax"):
            assert ref in text

    def test_format_validates_alpha(self):
        with pytest.raises(ValueError):
            table1_rows(alpha=1.0)


class TestRateFitting:
    def test_exact_power_law_recovered(self):
        x = np.array([10.0, 100.0, 1000.0])
        y = 5.0 * x ** -0.5
        fit = fit_power_law(x, y)
        assert fit.slope == pytest.approx(-0.5)
        assert fit.constant == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        x = np.array([1.0, 10.0, 100.0])
        fit = fit_power_law(x, 2.0 * x)
        np.testing.assert_allclose(fit.predict(np.array([5.0])), [10.0])

    def test_validations(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_power_law(np.array([1.0, -1.0]), np.array([1.0, 1.0]))

    def test_rate_consistency(self):
        assert rate_consistency(-0.6, -0.5)          # faster than theory: ok
        assert rate_consistency(-0.4, -0.5, atol=0.25)
        assert not rate_consistency(0.1, -0.5, atol=0.25)
        with pytest.raises(ValueError):
            rate_consistency(-0.5, -0.5, atol=-1.0)


class TestLogisticSmoothness:
    def test_formula(self):
        X = np.array([[3.0, 4.0]])  # ||x||^2 = 25, +1 bias -> 13
        assert logistic_smoothness_bound(X) == pytest.approx(13.0)

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            logistic_smoothness_bound(np.ones(3))
