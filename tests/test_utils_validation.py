"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_array_2d,
    check_fraction,
    check_in_unit_interval,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_length,
    check_simplex_vector,
)


class TestPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(2), "x") == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="tau1"):
            check_positive_int(-1, "tau1")


class TestNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestPositiveFloat:
    def test_accepts(self):
        assert check_positive_float(0.5, "lr") == 0.5

    def test_accepts_int(self):
        assert check_positive_float(2, "lr") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_float(0.0, "lr")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive_float(float("nan"), "lr")

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            check_positive_float(float("inf"), "lr")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_float("0.1", "lr")


class TestUnitInterval:
    def test_closed_right_boundary(self):
        assert check_in_unit_interval(1.0, "s") == 1.0

    def test_open_right_rejects_one(self):
        with pytest.raises(ValueError):
            check_in_unit_interval(1.0, "s", closed_right=False)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_in_unit_interval(-0.1, "s")

    def test_probability_alias(self):
        assert check_probability(0.3, "p") == 0.3


class TestFraction:
    def test_ok(self):
        check_fraction(2, 5, "m")

    def test_rejects(self):
        with pytest.raises(ValueError):
            check_fraction(6, 5, "m")


class TestArrays:
    def test_1d_roundtrip(self):
        out = check_array_1d([1, 2, 3], "v")
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_1d_length_enforced(self):
        with pytest.raises(ValueError):
            check_array_1d([1, 2], "v", length=3)

    def test_1d_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_array_1d([[1, 2]], "v")

    def test_2d_ok(self):
        assert check_array_2d([[1, 2]], "m").shape == (1, 2)

    def test_2d_rejects_vector(self):
        with pytest.raises(ValueError):
            check_array_2d([1, 2], "m")


class TestSimplexVector:
    def test_uniform_ok(self):
        p = check_simplex_vector([0.25] * 4, "p")
        assert p.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_simplex_vector([0.5, 0.7, -0.2], "p")

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError):
            check_simplex_vector([0.5, 0.1], "p")


class TestSameLength:
    def test_ok(self):
        check_same_length("a", [1, 2], "b", [3, 4])

    def test_rejects(self):
        with pytest.raises(ValueError):
            check_same_length("a", [1], "b", [3, 4])
