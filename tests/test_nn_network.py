"""Tests for repro.nn.network and repro.nn.models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers import Linear, ReLU
from repro.nn.losses import MeanSquaredError
from repro.nn.models import logistic_regression, make_model_factory, mlp
from repro.nn.network import NeuralNetwork


class TestConstruction:
    def test_paper_parameter_counts(self):
        """The §6 models: logistic 7850 params, MLP(300,100) 266,610 params."""
        assert logistic_regression(784, 10).num_parameters == 7850
        assert mlp(784, (300, 100), 10).num_parameters == 266_610

    def test_empty_layers_raise(self):
        with pytest.raises(ValueError):
            NeuralNetwork([], input_dim=4)

    def test_bad_input_dim_raises(self):
        with pytest.raises(ValueError):
            NeuralNetwork([Linear(3, 2)], input_dim=0)

    def test_negative_l2_raises(self):
        with pytest.raises(ValueError):
            logistic_regression(4, 2, l2=-0.1)

    def test_shape_pipeline_validated(self):
        with pytest.raises(ValueError):
            NeuralNetwork([Linear(3, 2), Linear(3, 2)], input_dim=3)

    def test_mlp_rejects_zero_width(self):
        with pytest.raises(ValueError):
            mlp(4, (0,), 2)

    def test_output_dim(self):
        assert mlp(8, (6, 5), 3).output_dim == 3


class TestFlatParams:
    def test_get_set_roundtrip(self):
        net = logistic_regression(4, 3, rng=0)
        w = net.get_params()
        net.set_params(np.zeros_like(w))
        assert np.all(net.get_params() == 0)
        net.set_params(w)
        np.testing.assert_array_equal(net.get_params(), w)

    def test_get_params_returns_copy(self):
        net = logistic_regression(4, 3, rng=0)
        w = net.get_params()
        w[:] = 99.0
        assert not np.any(net.get_params() == 99.0)

    def test_set_params_shape_checked(self):
        net = logistic_regression(4, 3, rng=0)
        with pytest.raises(ValueError):
            net.set_params(np.zeros(5))

    def test_params_view_is_live(self):
        net = logistic_regression(4, 3, rng=0)
        net.params_view()[:] = 1.5
        assert np.all(net.get_params() == 1.5)

    def test_layer_views_alias_flat_buffer(self):
        net = logistic_regression(4, 3, rng=0)
        net.params_view()[:] = 0.0
        layer = net.layers[0]
        layer.W[0, 0] = 7.0
        assert net.get_params()[0] == 7.0

    def test_initialize_reproducible(self):
        a = logistic_regression(5, 3, rng=42).get_params()
        b = logistic_regression(5, 3, rng=42).get_params()
        np.testing.assert_array_equal(a, b)

    def test_initialize_seed_matters(self):
        a = logistic_regression(5, 3, rng=1).get_params()
        b = logistic_regression(5, 3, rng=2).get_params()
        assert not np.array_equal(a, b)


class TestPasses:
    def test_forward_shape(self):
        net = mlp(6, (4,), 3, rng=0)
        assert net.forward(np.zeros((7, 6))).shape == (7, 3)

    def test_forward_rejects_bad_shape(self):
        net = logistic_regression(4, 2, rng=0)
        with pytest.raises(ValueError):
            net.forward(np.zeros((3, 5)))

    def test_loss_and_gradient_shapes(self):
        net = mlp(5, (4,), 3, rng=0)
        X = np.random.default_rng(0).normal(size=(6, 5))
        y = np.array([0, 1, 2, 0, 1, 2])
        loss, grad = net.loss_and_gradient(X, y)
        assert np.isscalar(loss)
        assert grad.shape == (net.num_parameters,)
        assert np.all(np.isfinite(grad))

    def test_gradient_is_copy(self):
        net = logistic_regression(4, 2, rng=0)
        X = np.random.default_rng(0).normal(size=(2, 4))
        y = np.array([0, 1])
        _, g1 = net.loss_and_gradient(X, y)
        g1[:] = 0.0
        _, g2 = net.loss_and_gradient(X, y)
        assert not np.array_equal(g1, g2)

    def test_l2_adds_to_loss_and_gradient(self):
        X = np.random.default_rng(1).normal(size=(4, 3))
        y = np.array([0, 1, 0, 1])
        plain = logistic_regression(3, 2, rng=5, l2=0.0)
        reg = logistic_regression(3, 2, rng=5, l2=0.1)
        w = plain.get_params()
        loss_plain, grad_plain = plain.loss_and_gradient(X, y)
        loss_reg, grad_reg = reg.loss_and_gradient(X, y)
        assert loss_reg == pytest.approx(loss_plain + 0.05 * float(w @ w))
        np.testing.assert_allclose(grad_reg, grad_plain + 0.1 * w)

    def test_predict_and_accuracy(self):
        net = logistic_regression(2, 2, rng=0)
        net.params_view()[:] = 0.0
        net.layers[0].W[:] = np.array([[1.0, -1.0], [0.0, 0.0]])
        X = np.array([[1.0, 0.0], [-1.0, 0.0]])
        np.testing.assert_array_equal(net.predict(X), [0, 1])
        assert net.accuracy(X, np.array([0, 1])) == 1.0
        assert net.accuracy(X, np.array([1, 1])) == 0.5

    def test_accuracy_empty_raises(self):
        net = logistic_regression(2, 2, rng=0)
        with pytest.raises(ValueError):
            net.accuracy(np.zeros((0, 2)), np.array([], dtype=int))

    def test_accuracy_and_loss_fuses_bit_identically(self):
        """One forward pass returns exactly what the two-pass path returns
        — the fused-evaluation contract (deterministic forward, shared
        logits) holds to the last bit, including the L2 term."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(9, 5))
        y = rng.integers(0, 3, size=9)
        for net in (logistic_regression(5, 3, rng=2, l2=0.05),
                    mlp(5, (6,), 3, rng=2, l2=0.05),
                    mlp(5, (6, 4), 3, rng=2)):
            acc, loss = net.accuracy_and_loss(X, y)
            assert acc == net.accuracy(X, y)
            assert loss == net.loss(X, y)

    def test_accuracy_and_loss_empty_raises(self):
        net = logistic_regression(2, 2, rng=0)
        with pytest.raises(ValueError):
            net.accuracy_and_loss(np.zeros((0, 2)), np.array([], dtype=int))

    def test_custom_loss(self):
        net = NeuralNetwork([Linear(2, 2)], input_dim=2, rng=0,
                            loss=MeanSquaredError())
        X = np.array([[1.0, 1.0]])
        t = np.array([[0.0, 0.0]])
        loss, grad = net.loss_and_gradient(X, t)
        assert loss >= 0.0
        assert grad.shape == (net.num_parameters,)


class TestClone:
    def test_clone_equal_but_independent(self):
        net = mlp(4, (3,), 2, rng=0)
        twin = net.clone()
        np.testing.assert_array_equal(net.get_params(), twin.get_params())
        twin.params_view()[:] = 0.0
        assert not np.array_equal(net.get_params(), twin.get_params())

    def test_clone_produces_same_outputs(self):
        net = mlp(4, (3,), 2, rng=0)
        twin = net.clone()
        X = np.random.default_rng(0).normal(size=(5, 4))
        np.testing.assert_array_equal(net.forward(X), twin.forward(X))


class TestModelFactory:
    def test_logistic_factory(self, tiny_image_fed):
        f = make_model_factory("logistic", 8, 3)
        net = f(0)
        assert net.num_parameters == 8 * 3 + 3

    def test_mlp_factory_hidden(self):
        f = make_model_factory("mlp", 8, 3, hidden=(5,))
        net = f(0)
        assert len(net.layers) == 3  # Linear, ReLU, Linear

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_model_factory("cnn", 8, 3)

    def test_factory_reproducible(self):
        f = make_model_factory("logistic", 6, 2)
        np.testing.assert_array_equal(f(3).get_params(), f(3).get_params())
