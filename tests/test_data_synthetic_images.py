"""Tests for the synthetic image generators (the EMNIST/MNIST/Fashion stand-ins)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic_images import (
    EMNIST_DIGITS_LIKE,
    FASHION_MNIST_LIKE,
    MNIST_LIKE,
    ImageGeneratorSpec,
    SyntheticImageGenerator,
    make_image_dataset,
    resized_spec,
)


class TestSpecValidation:
    def test_defaults_valid(self):
        ImageGeneratorSpec(name="x")

    def test_rejects_one_class(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", num_classes=1)

    def test_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", side=3)

    def test_rejects_grid_above_side(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", side=8, grid=9)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", pixel_noise=-0.1)

    def test_rejects_huge_shift(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", side=8, max_shift=4)

    def test_rejects_bad_spread(self):
        with pytest.raises(ValueError):
            ImageGeneratorSpec(name="x", class_difficulty_spread=1.0)

    def test_class_noise_factor_ramp(self):
        spec = ImageGeneratorSpec(name="x", num_classes=10,
                                  class_difficulty_spread=0.4)
        assert spec.class_noise_factor(0) == pytest.approx(0.6)
        assert spec.class_noise_factor(9) == pytest.approx(1.4)
        factors = [spec.class_noise_factor(c) for c in range(10)]
        assert factors == sorted(factors)

    def test_class_noise_factor_no_spread(self):
        spec = ImageGeneratorSpec(name="x")
        assert spec.class_noise_factor(3) == 1.0

    def test_class_noise_factor_range_check(self):
        spec = ImageGeneratorSpec(name="x")
        with pytest.raises(ValueError):
            spec.class_noise_factor(10)


class TestGenerator:
    @pytest.fixture(scope="class")
    def gen(self):
        return SyntheticImageGenerator(
            ImageGeneratorSpec(name="t", side=10, grid=5, max_shift=1,
                               deform_scale=0.3, pixel_noise=0.1))

    def test_prototypes_shape_and_range(self, gen):
        protos = gen.prototypes()
        assert protos.shape == (10, 10, 10)
        assert np.all(protos >= 0) and np.all(protos <= 1)

    def test_prototypes_deterministic(self):
        spec = ImageGeneratorSpec(name="t", side=10, grid=5, prototype_seed=5,
                                  max_shift=1)
        a = SyntheticImageGenerator(spec).prototypes()
        b = SyntheticImageGenerator(spec).prototypes()
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_prototypes(self):
        base = dict(name="t", side=10, grid=5, max_shift=1)
        a = SyntheticImageGenerator(ImageGeneratorSpec(**base, prototype_seed=1))
        b = SyntheticImageGenerator(ImageGeneratorSpec(**base, prototype_seed=2))
        assert not np.allclose(a.prototypes(), b.prototypes())

    def test_sample_class_shape_and_range(self, gen):
        X = gen.sample_class(2, 7, np.random.default_rng(0))
        assert X.shape == (7, 100)
        assert np.all(X >= 0) and np.all(X <= 1)

    def test_sample_class_validates(self, gen):
        with pytest.raises(ValueError):
            gen.sample_class(10, 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gen.sample_class(0, -1, np.random.default_rng(0))

    def test_sample_deterministic_given_rng(self, gen):
        a = gen.sample(np.array([0, 1, 2]), np.random.default_rng(3))
        b = gen.sample(np.array([0, 1, 2]), np.random.default_rng(3))
        np.testing.assert_array_equal(a.X, b.X)

    def test_sample_preserves_label_order(self, gen):
        labels = np.array([3, 0, 3, 7])
        ds = gen.sample(labels, np.random.default_rng(0))
        np.testing.assert_array_equal(ds.y, labels)

    def test_balanced_dataset(self, gen):
        ds = gen.balanced_dataset(4, np.random.default_rng(0))
        assert len(ds) == 40
        np.testing.assert_array_equal(ds.class_counts(), np.full(10, 4))

    def test_balanced_rejects_zero(self, gen):
        with pytest.raises(ValueError):
            gen.balanced_dataset(0, np.random.default_rng(0))

    def test_within_class_variation(self, gen):
        """Samples of one class must differ from each other (noise is applied)."""
        X = gen.sample_class(0, 2, np.random.default_rng(0))
        assert not np.allclose(X[0], X[1])

    def test_classes_are_separable(self):
        """Same-class samples must be closer to their prototype than to others."""
        spec = ImageGeneratorSpec(name="t", side=10, grid=5, deform_scale=0.1,
                                  pixel_noise=0.05, max_shift=0)
        gen = SyntheticImageGenerator(spec)
        protos = gen.prototypes().reshape(10, -1)
        X = gen.sample_class(4, 20, np.random.default_rng(0))
        dists = np.linalg.norm(X[:, None, :] - protos[None, :, :], axis=2)
        assert np.all(np.argmin(dists, axis=1) == 4)


class TestResizing:
    def test_resized_spec_keeps_family_identity(self):
        spec = resized_spec(EMNIST_DIGITS_LIKE, 12)
        assert spec.side == 12
        assert spec.prototype_seed == EMNIST_DIGITS_LIKE.prototype_seed
        assert spec.class_difficulty_spread == EMNIST_DIGITS_LIKE.class_difficulty_spread

    def test_difficulty_factor_shrinks_noise_at_small_sides(self):
        spec8 = resized_spec(MNIST_LIKE, 8)
        assert spec8.pixel_noise < MNIST_LIKE.pixel_noise

    def test_make_image_dataset_families(self):
        rng = np.random.default_rng(0)
        for fam in ("mnist_like", "emnist_digits_like", "fashion_mnist_like"):
            ds = make_image_dataset(fam, 3, rng, side=8)
            assert ds.input_dim == 64
            assert len(ds) == 30

    def test_make_image_dataset_unknown_family(self):
        with pytest.raises(ValueError):
            make_image_dataset("cifar_like", 3, np.random.default_rng(0))

    def test_native_side_uses_family_spec(self):
        rng = np.random.default_rng(0)
        ds = make_image_dataset("mnist_like", 1, rng, side=28)
        assert ds.input_dim == 784


class TestDifficultyStructure:
    def test_harder_family_is_harder(self):
        """Linear separability must rank mnist > fashion (the paper's ordering)."""
        from repro.nn.models import logistic_regression

        rng = np.random.default_rng(0)
        accs = {}
        for fam in ("mnist_like", "fashion_mnist_like"):
            train = make_image_dataset(fam, 40, rng, side=12)
            test = make_image_dataset(fam, 20, rng, side=12)
            net = logistic_regression(train.input_dim, 10, rng=0)
            for _ in range(150):
                _, g = net.loss_and_gradient(train.X, train.y)
                net.params_view()[:] -= 0.5 * g
            accs[fam] = net.accuracy(test.X, test.y)
        assert accs["mnist_like"] > accs["fashion_mnist_like"]

    def test_class_difficulty_ramp_in_accuracy(self):
        """With a strong spread, the high-index classes must be harder to classify."""
        from repro.nn.models import logistic_regression

        spec = ImageGeneratorSpec(name="t", side=10, grid=5, deform_scale=0.45,
                                  pixel_noise=0.18, max_shift=1,
                                  class_difficulty_spread=0.7)
        gen = SyntheticImageGenerator(spec)
        rng = np.random.default_rng(0)
        train = gen.balanced_dataset(60, rng)
        test = gen.balanced_dataset(40, rng)
        net = logistic_regression(train.input_dim, 10, rng=0)
        for _ in range(200):
            _, g = net.loss_and_gradient(train.X, train.y)
            net.params_view()[:] -= 0.5 * g
        per_class = [net.accuracy(test.X[test.y == c], test.y[test.y == c])
                     for c in range(10)]
        easy = np.mean(per_class[:3])
        hard = np.mean(per_class[-3:])
        assert easy > hard
