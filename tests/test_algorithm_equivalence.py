"""Algorithm-reduction tests: the special cases claimed after Theorems 1–2.

The paper notes that HierMinimax specializes to known algorithms:

* ``τ2 = 1`` recovers DRFA's update pattern.  With one client per edge area the
  two implementations consume *identical* randomness (same cloud stream, same
  client streams), so their trajectories must match **bit for bit**.
* ``τ1 = τ2 = 1`` recovers Stochastic-AFL's pattern (single-step local updates,
  loss estimation at the fresh global model); the equivalence is semantic rather
  than bitwise because the two consume cloud randomness in different orders, so it
  is tested distributionally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.drfa import DRFA
from repro.baselines.stochastic_afl import StochasticAFL
from repro.core.hierminimax import HierMinimax
from repro.nn.models import make_model_factory

from tests.conftest import make_blob_fed


@pytest.fixture()
def singleton_fed():
    """5 edge areas with exactly one client each — edges ≡ clients."""
    return make_blob_fed(num_edges=5, clients_per_edge=1, n_per_client=16,
                         dim=4, seed=3)


@pytest.fixture()
def singleton_factory(singleton_fed):
    return make_model_factory("logistic", singleton_fed.input_dim,
                              singleton_fed.num_classes)


class TestDRFAReduction:
    def test_tau2_one_matches_drfa_bitwise(self, singleton_fed, singleton_factory):
        """HierMinimax(τ2=1, N0=1) and DRFA(τ1) are the same algorithm."""
        kwargs = dict(batch_size=4, eta_w=0.1, seed=42)
        hm = HierMinimax(singleton_fed, singleton_factory, eta_p=0.05,
                         tau1=3, tau2=1, m_edges=3, **kwargs)
        dr = DRFA(singleton_fed, singleton_factory, eta_q=0.05, tau1=3,
                  m_clients=3, **kwargs)
        for k in range(5):
            hm.run_round(k)
            dr.run_round(k)
            np.testing.assert_array_equal(hm.w, dr.w)
            np.testing.assert_array_equal(hm.p, dr.q)

    def test_tau2_one_same_slot_cost(self, singleton_fed, singleton_factory):
        hm = HierMinimax(singleton_fed, singleton_factory, tau1=3, tau2=1)
        dr = DRFA(singleton_fed, singleton_factory, tau1=3)
        assert hm.slots_per_round == dr.slots_per_round == 3

    def test_reduction_breaks_with_tau2_two(self, singleton_fed,
                                            singleton_factory):
        """Sanity: with τ2 = 2 the trajectories must diverge."""
        kwargs = dict(batch_size=4, eta_w=0.1, seed=42)
        hm = HierMinimax(singleton_fed, singleton_factory, eta_p=0.05,
                         tau1=3, tau2=2, m_edges=3, **kwargs)
        dr = DRFA(singleton_fed, singleton_factory, eta_q=0.05, tau1=3,
                  m_clients=3, **kwargs)
        hm.run_round(0)
        dr.run_round(0)
        assert not np.array_equal(hm.w, dr.w)


class TestAFLReduction:
    def test_tau_one_matches_afl_statistically(self, singleton_fed,
                                               singleton_factory):
        """HierMinimax(τ1=τ2=1, N0=1) behaves like Stochastic-AFL in expectation.

        Compare averaged final losses across seeds; they must agree within the
        sampling noise (the two differ only in the order RNG draws are consumed).
        """
        final_hm, final_afl = [], []
        for seed in range(8):
            hm = HierMinimax(singleton_fed, singleton_factory, eta_p=0.05,
                             tau1=1, tau2=1, m_edges=3, batch_size=4,
                             eta_w=0.1, seed=seed)
            afl = StochasticAFL(singleton_fed, singleton_factory, eta_q=0.05,
                                m_clients=3, batch_size=4, eta_w=0.1, seed=seed)
            rh = hm.run(rounds=20, eval_every=20)
            ra = afl.run(rounds=20, eval_every=20)
            final_hm.append(rh.history.final().record.average_accuracy)
            final_afl.append(ra.history.final().record.average_accuracy)
        assert abs(np.mean(final_hm) - np.mean(final_afl)) < 0.15

    def test_same_slot_cost(self, singleton_fed, singleton_factory):
        hm = HierMinimax(singleton_fed, singleton_factory, tau1=1, tau2=1)
        afl = StochasticAFL(singleton_fed, singleton_factory)
        assert hm.slots_per_round == afl.slots_per_round == 1

    def test_same_cloud_communication_per_round(self, singleton_fed,
                                                singleton_factory):
        hm = HierMinimax(singleton_fed, singleton_factory, tau1=1, tau2=1,
                         m_edges=3, eta_w=0.1, eta_p=0.05, seed=0)
        afl = StochasticAFL(singleton_fed, singleton_factory, m_clients=3,
                            eta_w=0.1, eta_q=0.05, seed=0)
        hm.run_round(0)
        afl.run_round(0)
        assert hm.tracker.edge_cloud_cycles == afl.tracker.edge_cloud_cycles == 2
