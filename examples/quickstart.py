#!/usr/bin/env python3
"""Quickstart: train HierMinimax on a hierarchical federated task in ~30 seconds.

Builds the paper's EMNIST-Digits-style layout (10 edge areas × 3 clients, one
class per area), runs HierMinimax with the §6.1 period parameters, and prints the
fairness metrics and communication totals.

Run:
    python examples/quickstart.py [--scale tiny|small] [--rounds N] \
        [--trace run.trace.jsonl] [--faults SPEC] \
        [--attack SPEC --defense SPEC] \
        [--checkpoint run.ckpt.json [--checkpoint-every N] [--resume]] \
        [--stop-after K]

With ``--trace`` the run also streams a JSONL span/metric record; inspect it
afterwards with ``python -m repro trace-report run.trace.jsonl``.

``--faults 'client_dropout=0.2,edge_outage=0.05,seed=1'`` trains through the
seeded fault plan (see ``repro.faults.FaultPlan``).  Checkpoint/resume demo::

    python examples/quickstart.py --checkpoint /tmp/qs.ckpt.json --stop-after 100
    python examples/quickstart.py --checkpoint /tmp/qs.ckpt.json --resume

Byzantine demo — 20% sign-flipping clients held off by the trimmed mean::

    python examples/quickstart.py --attack sign_flip,fraction=0.2 \
        --defense trimmed_mean

Time-to-accuracy demo — a seeded heterogeneous cost model prices every
transfer and SGD step, and a virtual clock turns the round dependency graph
into simulated seconds (``sim_time_s`` on every history point; numerical
results are unchanged).  ``--staleness S`` switches to the semi-asynchronous
variant with bounded-staleness edge merges (``S=0`` reproduces the
synchronous run exactly)::

    python examples/quickstart.py --cost-model hetero,seed=1,slow_factor=10
    python examples/quickstart.py --cost-model hetero,seed=1,slow_factor=10 \
        --staleness 1

Dynamic-membership demo — clients arrive and depart, edges crash and recover,
and the hierarchy self-heals by re-homing orphaned clients to surviving
edges (every decision a pure function of ``(seed, round, entity)``)::

    python examples/quickstart.py \
        --churn arrive=0.05,depart=0.02,edge_mttf=40,edge_mttr=4,seed=1

Virtual-population demo — a million clients over a thousand edges in O(cohort)
memory: ``--population`` replaces the eager dataset with a declarative spec
whose sampled clients are derived on demand each round and discarded after
(see DESIGN.md §"Virtual populations")::

    python examples/quickstart.py --rounds 5 \
        --population clients=1000000,edges=1000,samples=8,eval_edges=10,seed=0
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AttackPlan, FaultPlan, HierMinimax, NullTracer, \
    SemiAsyncHierMinimax, Tracer, apply_label_flip, make_federated_dataset, \
    make_model_factory
from repro.exec import resolve_backend
from repro.simtime import resolve_timing
from repro.utils.logging import RunLogger


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small"),
                        help="dataset size tier")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cloud training rounds (default: scale-dependent)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL trace of the run here")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault plan, e.g. 'client_dropout=0.2,seed=1'")
    parser.add_argument("--attack", default=None, metavar="SPEC",
                        help="byzantine attack plan, e.g. "
                             "'sign_flip,fraction=0.2'")
    parser.add_argument("--defense", default=None, metavar="SPEC",
                        help="robust-aggregation policy, e.g. 'trimmed_mean' "
                             "or 'edge=median,cloud=krum'")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint file to write (and resume from)")
    parser.add_argument("--checkpoint-every", type=int, default=25, metavar="N",
                        help="rounds between checkpoint writes")
    parser.add_argument("--resume", action="store_true",
                        help="restore --checkpoint before training")
    parser.add_argument("--stop-after", type=int, default=None, metavar="K",
                        help="stop after K rounds (simulated kill; rerun "
                             "with --resume to finish)")
    parser.add_argument("--backend", default=None,
                        choices=("serial", "thread", "process", "vectorized"),
                        help="execution backend for client local training "
                             "(bit-identical results for every choice)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker count for thread/process backends")
    parser.add_argument("--churn", default=None, metavar="SPEC",
                        help="dynamic-membership plan, e.g. "
                             "'arrive=0.05,depart=0.02,edge_mttf=40,seed=1' "
                             "(client churn, edge failover, self-healing)")
    parser.add_argument("--cost-model", default=None, metavar="SPEC",
                        help="simulated-time cost model, e.g. "
                             "'hetero,seed=1,slow_factor=10' (prices compute "
                             "and transfers; numerical results unchanged)")
    parser.add_argument("--staleness", type=int, default=None, metavar="S",
                        help="use the semi-async variant with staleness "
                             "bound S (0 = exact synchronous reproduction)")
    parser.add_argument("--population", default=None, metavar="SPEC",
                        help="virtual-population spec replacing the eager "
                             "dataset, e.g. 'clients=1000000,edges=1000,"
                             "samples=8,eval_edges=10,seed=0' (see "
                             "repro.population.PopulationSpec.parse)")
    args = parser.parse_args()
    if args.resume and not args.checkpoint:
        parser.error("--resume requires --checkpoint")

    rounds = args.rounds if args.rounds is not None else (
        300 if args.scale == "tiny" else 1500)

    # 1. Data: 10 edge areas x 3 clients, each area holding one digit class —
    #    or, with --population, a declarative spec materialized lazily.
    if args.population:
        from repro import PopulationSpec

        data = PopulationSpec.parse(args.population)
        print(f"population: {data.num_clients:,} clients / "
              f"{data.num_edges:,} edges (virtual)")
    else:
        data = make_federated_dataset("emnist_digits", seed=args.seed,
                                      scale=args.scale)
        print(f"dataset: {data}")

    # 2. Model: multinomial logistic regression (the paper's convex setting).
    model = make_model_factory("logistic", data.input_dim, data.num_classes)

    # 3. Algorithm 1 with the paper's periods (tau1 = tau2 = 2, m_E = 5).
    obs = (Tracer(args.trace, meta={"example": "quickstart"},
                  write_max_depth=2)
           if args.trace else NullTracer())
    plan = FaultPlan.parse(args.faults) if args.faults else None
    if plan is not None:
        print(f"faults : {args.faults}")
    if args.attack:
        from dataclasses import replace

        attack = AttackPlan.parse(args.attack)
        plan = replace(plan if plan is not None else FaultPlan(),
                       byzantine=attack)
        if args.population and attack.attack == "label_flip":
            parser.error("--attack label_flip rewrites eager shards and is "
                         "incompatible with --population (virtual shards "
                         "are derived, not stored)")
        data = apply_label_flip(data, attack)
        print(f"attack : {args.attack}")
    if args.defense:
        print(f"defense: {args.defense}")
    if args.churn:
        print(f"churn  : {args.churn}")
    backend = resolve_backend(args.backend, args.workers)
    if backend.name != "serial":
        print(f"backend: {backend.name}")
    timing = resolve_timing(args.cost_model)
    if timing.enabled:
        print(f"cost model: {args.cost_model}")
    algo_cls = HierMinimax
    extra_kwargs = {}
    if args.staleness is not None:
        algo_cls = SemiAsyncHierMinimax
        extra_kwargs["staleness"] = args.staleness
        print(f"semi-async: staleness={args.staleness}")
    algo = algo_cls(
        data, model,
        tau1=2, tau2=2, m_edges=5,
        eta_w=0.05, eta_p=2e-3, batch_size=8,
        seed=args.seed,
        logger=RunLogger(every=max(1, rounds // 10)),
        obs=obs,
        faults=plan,
        backend=backend,
        defense=args.defense,
        timing=timing,
        churn=args.churn,
        **extra_kwargs,
    )

    # 4. Optional checkpoint/resume: restore, then run only what is left.
    done = 0
    if args.resume:
        done = algo.load_checkpoint(args.checkpoint)
        print(f"resumed from {args.checkpoint} at round {done}")
    run_rounds = rounds - done
    if args.stop_after is not None:
        run_rounds = min(run_rounds, args.stop_after)
    if run_rounds <= 0:
        print("checkpoint already covers the requested rounds; nothing to do")
        backend.close()
        obs.close()
        return

    result = algo.run(
        rounds=run_rounds, eval_every=max(1, rounds // 10),
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every if args.checkpoint else None)
    if args.checkpoint:
        # Always leave a checkpoint at the exact final round, so --resume (or
        # a post-mortem) sees the state the run actually reached.
        algo.save_checkpoint(args.checkpoint)
        if algo.rounds_completed < rounds:
            print(f"\nstopped after round {algo.rounds_completed}; checkpoint "
                  f"saved to {args.checkpoint} (finish with --resume)")
        else:
            print(f"\nfinal checkpoint saved to {args.checkpoint}")
    backend.close()
    obs.close()
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(inspect: python -m repro trace-report {args.trace})")

    record = result.history.final().record
    print("\n--- results ---")
    print(f"average test accuracy : {record.average_accuracy:.4f}")
    print(f"worst edge accuracy   : {record.worst_accuracy:.4f}")
    print(f"accuracy variance x1e4: {record.variance_x1e4:.2f}")
    print(f"per-edge accuracies   : {np.round(record.per_edge_accuracy, 3)}")
    weights = result.final_weights
    if weights is not None and weights.size > 20:
        top = np.argsort(weights)[::-1][:5]
        print(f"edge weights p        : {weights.size} edges; top-5 "
              + ", ".join(f"e{e}={weights[e]:.3f}" for e in top))
    else:
        print(f"edge weights p        : {np.round(weights, 3)}")
    print("\n--- communication ---")
    print(f"edge-cloud cycles     : {result.comm.edge_cloud_cycles}")
    print(f"client-edge cycles    : {result.comm.cycles['client_edge']}")
    print(f"total traffic         : {result.comm.total_bytes / 1e6:.1f} MB")
    if timing.enabled:
        print(f"simulated time        : {result.sim_time_s:.3f} s "
              f"(virtual clock)")


if __name__ == "__main__":
    main()
