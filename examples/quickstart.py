#!/usr/bin/env python3
"""Quickstart: train HierMinimax on a hierarchical federated task in ~30 seconds.

Builds the paper's EMNIST-Digits-style layout (10 edge areas × 3 clients, one
class per area), runs HierMinimax with the §6.1 period parameters, and prints the
fairness metrics and communication totals.

Run:
    python examples/quickstart.py [--scale tiny|small] [--rounds N] \
        [--trace run.trace.jsonl]

With ``--trace`` the run also streams a JSONL span/metric record; inspect it
afterwards with ``python -m repro trace-report run.trace.jsonl``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import HierMinimax, NullTracer, Tracer, make_federated_dataset, \
    make_model_factory
from repro.utils.logging import RunLogger


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small"),
                        help="dataset size tier")
    parser.add_argument("--rounds", type=int, default=None,
                        help="cloud training rounds (default: scale-dependent)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL trace of the run here")
    args = parser.parse_args()

    rounds = args.rounds if args.rounds is not None else (
        300 if args.scale == "tiny" else 1500)

    # 1. Data: 10 edge areas x 3 clients, each area holding one digit class.
    data = make_federated_dataset("emnist_digits", seed=args.seed,
                                  scale=args.scale)
    print(f"dataset: {data}")

    # 2. Model: multinomial logistic regression (the paper's convex setting).
    model = make_model_factory("logistic", data.input_dim, data.num_classes)

    # 3. Algorithm 1 with the paper's periods (tau1 = tau2 = 2, m_E = 5).
    obs = (Tracer(args.trace, meta={"example": "quickstart"},
                  write_max_depth=2)
           if args.trace else NullTracer())
    algo = HierMinimax(
        data, model,
        tau1=2, tau2=2, m_edges=5,
        eta_w=0.05, eta_p=2e-3, batch_size=8,
        seed=args.seed,
        logger=RunLogger(every=max(1, rounds // 10)),
        obs=obs,
    )

    result = algo.run(rounds=rounds, eval_every=max(1, rounds // 10))
    obs.close()
    if args.trace:
        print(f"\ntrace written to {args.trace} "
              f"(inspect: python -m repro trace-report {args.trace})")

    record = result.history.final().record
    print("\n--- results ---")
    print(f"average test accuracy : {record.average_accuracy:.4f}")
    print(f"worst edge accuracy   : {record.worst_accuracy:.4f}")
    print(f"accuracy variance x1e4: {record.variance_x1e4:.2f}")
    print(f"per-edge accuracies   : {np.round(record.per_edge_accuracy, 3)}")
    print(f"edge weights p        : {np.round(result.final_weights, 3)}")
    print("\n--- communication ---")
    print(f"edge-cloud cycles     : {result.comm.edge_cloud_cycles}")
    print(f"client-edge cycles    : {result.comm.cycles['client_edge']}")
    print(f"total traffic         : {result.comm.total_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
