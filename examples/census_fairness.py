#!/usr/bin/env python3
"""Group fairness on census-like data (the Table 2 Adult scenario).

Two edge areas hold the two education groups of the Adult-like dataset —
Doctorate (a small minority in training) and non-Doctorate.  Data-size-weighted
minimization underserves the minority group; HierMinimax's worst-case
reweighting recovers it.  This is the paper's motivating train/test mismatch:
"the data ratios of clients in training do not match that of the unseen data in
reality" (§1).

Run:
    python examples/census_fairness.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import HierFAVG, HierMinimax, make_federated_dataset, make_model_factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rounds = 500 if args.scale == "tiny" else 1000
    eta_w = 0.08 if args.scale == "tiny" else 0.05

    data = make_federated_dataset("adult", seed=args.seed, scale=args.scale)
    sizes = [edge.train_size for edge in data.edges]
    print(f"dataset: {data}")
    print(f"training samples per group (Doctorate, non-Doctorate): {sizes}\n")

    model = make_model_factory("logistic", data.input_dim, data.num_classes)
    common = dict(tau1=2, tau2=2, batch_size=8, eta_w=eta_w, seed=args.seed)

    groups = ("Doctorate", "non-Doctorate")
    print(f"{'method':26s} {'avg':>7s} " +
          " ".join(f"{g:>14s}" for g in groups))
    for name, algo in (
        ("HierFAVG (data-weighted)", HierFAVG(data, model, **common)),
        ("HierMinimax", HierMinimax(data, model, eta_p=2e-3, **common)),
    ):
        result = algo.run(rounds=rounds, eval_every=rounds)
        rec = result.history.final().record
        accs = " ".join(f"{a:14.3f}" for a in rec.per_edge_accuracy)
        print(f"{name:26s} {rec.average_accuracy:7.3f} {accs}")
        if result.final_weights is not None:
            print(f"{'':26s} learned group weights p = "
                  f"{np.round(result.final_weights, 3)}")

    print("\nHierMinimax reweights toward the group with the worse training "
          "loss, evening out the two groups' test accuracies (higher worst, "
          "lower variance) at a small cost to the average — Table 2's Adult row.")


if __name__ == "__main__":
    main()
