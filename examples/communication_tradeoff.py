#!/usr/bin/env python3
"""The §5 communication-convergence tradeoff, end to end.

For a fixed training horizon ``T``, sweeps the tradeoff exponent ``α`` (which
sets ``τ1·τ2 ≈ T^α`` and the Theorem-1 learning rates), runs HierMinimax at each
operating point, and prints the resulting edge-cloud communication next to the
measured duality gap of the averaged solution — the empirical version of
Table 1's "ours" row.

Run:
    python examples/communication_tradeoff.py [--horizon T]
"""

from __future__ import annotations

import argparse

from repro import HierMinimax, make_federated_dataset, make_model_factory
from repro.core.schedules import tradeoff_schedule
from repro.theory.duality import duality_gap


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--horizon", type=int, default=512,
                        help="total training slots T")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    data = make_federated_dataset("emnist_digits", seed=args.seed, scale="tiny",
                                  num_edges=5, clients_per_edge=2)
    model = make_model_factory("logistic", data.input_dim, data.num_classes)

    print(f"horizon T = {args.horizon} slots; convex schedules of Theorem 1\n")
    print(f"{'alpha':>6s} {'tau1':>5s} {'tau2':>5s} {'rounds':>7s} "
          f"{'eta_w':>9s} {'eta_p':>9s} {'ec cycles':>10s} {'duality gap':>12s}")
    for alpha in (0.0, 0.2, 0.4, 0.6):
        sched = tradeoff_schedule(args.horizon, alpha, convex=True,
                                  c_w=30.0, c_p=3.0)
        algo = HierMinimax(
            data, model, tau1=sched.tau1, tau2=sched.tau2, m_edges=3,
            eta_w=sched.eta_w, eta_p=sched.eta_p, batch_size=8, seed=args.seed)
        result = algo.run(rounds=sched.rounds, eval_every=sched.rounds)
        gap = duality_gap(algo.engine, result.final_params, result.final_weights,
                          data, max_iters=300)
        print(f"{alpha:6.2f} {sched.tau1:5d} {sched.tau2:5d} {sched.rounds:7d} "
              f"{sched.eta_w:9.2g} {sched.eta_p:9.2g} "
              f"{result.comm.edge_cloud_cycles:10d} {gap:12.4f}")

    print("\nLarger alpha => fewer edge-cloud communications (Theta(T^{1-a})) at "
          "the price of a larger duality gap (O(1/T^{(1-a)/2})) — the paper's "
          "tunable tradeoff.")


if __name__ == "__main__":
    main()
