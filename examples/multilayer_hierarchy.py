#!/usr/bin/env python3
"""HierMinimax over deeper-than-three-layer hierarchies (the §3 generalization).

Compares the same workload trained over a flat 3-layer hierarchy and over a
4-layer hierarchy (cloud → regions → edges → clients) at an equal slot budget,
showing how the extra aggregation tier trades top-link (WAN) communication
against accuracy — the paper's tradeoff, one level deeper.  Also demonstrates
quantized uplinks on the deep tree.

Run:
    python examples/multilayer_hierarchy.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import HierarchyTree, MultiLevelHierMinimax, QSGDQuantizer
from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--slots", type=int, default=1600)
    args = parser.parse_args()

    # 8 edge areas x 2 clients; the deep tree groups the areas into 2 regions.
    data = make_federated_dataset("emnist_digits", seed=args.seed, scale="tiny",
                                  num_edges=8, clients_per_edge=2)
    model = make_model_factory("logistic", data.input_dim, data.num_classes)
    print(f"dataset: {data}\n")

    runs = []

    # Three layers (the paper's Algorithm 1): cloud -> 8 edges -> clients.
    algo3 = HierMinimax(data, model, tau1=2, tau2=2, m_edges=8,
                        eta_w=0.05, eta_p=2e-3, batch_size=8, seed=args.seed)
    runs.append(("3-layer (Algorithm 1)", algo3, args.slots // 4))

    # Four layers: cloud -> 2 regions -> 4 edges each -> clients.  One extra
    # aggregation tier with its own period tau.
    tree = HierarchyTree([
        [[0, 1]],                                  # cloud -> regions
        [[0, 1, 2, 3], [4, 5, 6, 7]],              # regions -> edge areas
        [[2 * e, 2 * e + 1] for e in range(8)],    # edges -> clients
    ])
    algo4 = MultiLevelHierMinimax(
        data, model, tree=tree, taus=(2, 2, 2), m_top=2,
        eta_w=0.05, eta_p=2e-3, batch_size=8, seed=args.seed)
    runs.append(("4-layer (generalized)", algo4, args.slots // 8))

    # Four layers + QSGD-quantized client uploads on the 3-layer variant for a
    # communication-volume comparison point.
    algo3q = HierMinimax(data, model, tau1=2, tau2=2, m_edges=8,
                         eta_w=0.05, eta_p=2e-3, batch_size=8, seed=args.seed,
                         compressor=QSGDQuantizer(levels=16))
    runs.append(("3-layer + QSGD(16)", algo3q, args.slots // 4))

    print(f"{'variant':24s} {'avg acc':>8s} {'worst':>7s} "
          f"{'top-link cycles':>16s} {'total MB':>9s}")
    for label, algo, rounds in runs:
        result = algo.run(rounds=rounds, eval_every=rounds)
        rec = result.history.final().record
        print(f"{label:24s} {rec.average_accuracy:8.3f} "
              f"{rec.worst_accuracy:7.3f} {result.comm.edge_cloud_cycles:16d} "
              f"{result.comm.total_bytes / 1e6:9.1f}")
        if result.final_weights is not None:
            print(f"{'':24s} weights p = {np.round(result.final_weights, 3)}")

    print("\nThe deeper tree halves top-link synchronizations per slot (the "
          "region tier absorbs them); quantization cuts upload bytes instead. "
          "Both are instances of the paper's communication/convergence dial.")


if __name__ == "__main__":
    main()
