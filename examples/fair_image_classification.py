#!/usr/bin/env python3
"""Minimax fairness on heterogeneous image classification (the Fig. 3 scenario).

Compares HierFAVG (hierarchical minimization) against HierMinimax (hierarchical
*minimax*) on the one-class-per-edge EMNIST-Digits layout, then demonstrates the
paper's general convex constraint set ``P``: a capped simplex that guarantees
every edge area keeps at least a floor weight (footnote 1 of §3).

Run:
    python examples/fair_image_classification.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import HierFAVG, HierMinimax, make_federated_dataset, make_model_factory
from repro.ops.projections import project_capped_simplex


def run_one(algo, rounds):
    result = algo.run(rounds=rounds, eval_every=rounds)
    return result.history.final().record, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    rounds = 300 if args.scale == "tiny" else 1500
    eta_w = 0.05 if args.scale == "tiny" else 0.03

    data = make_federated_dataset("emnist_digits", seed=args.seed,
                                  scale=args.scale)
    model = make_model_factory("logistic", data.input_dim, data.num_classes)
    common = dict(tau1=2, tau2=2, m_edges=5, batch_size=8, eta_w=eta_w,
                  seed=args.seed)

    print(f"dataset: {data}\n")
    print(f"{'method':28s} {'avg':>7s} {'worst':>7s} {'var x1e4':>9s}")

    # Hierarchical minimization: solves problem (1), no weight vector.
    favg, _ = run_one(HierFAVG(data, model, **common), rounds)
    print(f"{'HierFAVG (minimization)':28s} {favg.average_accuracy:7.3f} "
          f"{favg.worst_accuracy:7.3f} {favg.variance_x1e4:9.2f}")

    # Hierarchical minimax: solves problem (3) on the full simplex.
    hm_algo = HierMinimax(data, model, eta_p=2e-3, **common)
    hm, hm_result = run_one(hm_algo, rounds)
    print(f"{'HierMinimax (full simplex)':28s} {hm.average_accuracy:7.3f} "
          f"{hm.worst_accuracy:7.3f} {hm.variance_x1e4:9.2f}")

    # Constrained variant: P = {p : 0.05 <= p_e <= 0.3} — prior knowledge that no
    # edge area should be ignored nor dominate (the paper's general convex P).
    capped = HierMinimax(
        data, model, eta_p=2e-3,
        projection_p=lambda v: project_capped_simplex(v, 0.05, 0.3), **common)
    hc, hc_result = run_one(capped, rounds)
    print(f"{'HierMinimax (capped P)':28s} {hc.average_accuracy:7.3f} "
          f"{hc.worst_accuracy:7.3f} {hc.variance_x1e4:9.2f}")

    print("\nlearned edge weights:")
    print(f"  full simplex: {np.round(hm_result.final_weights, 3)}")
    print(f"  capped      : {np.round(hc_result.final_weights, 3)}")
    print("\nper-edge accuracies (edge areas hold classes 0..9; higher class "
          "index = intrinsically harder):")
    print(f"  HierFAVG    : {np.round(favg.per_edge_accuracy, 3)}")
    print(f"  HierMinimax : {np.round(hm.per_edge_accuracy, 3)}")


if __name__ == "__main__":
    main()
