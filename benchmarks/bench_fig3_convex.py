"""Figure 3 reproduction bench — convex loss (EMNIST-Digits-like).

Regenerates both panels of Fig. 3: average and worst test accuracy versus
communication rounds for FedAvg, Stochastic-AFL, DRFA, HierFAVG, and HierMinimax,
plus the §6.1 headline — communication rounds needed to reach the worst-accuracy
target and HierMinimax's percentage reductions against each alternative
(paper, at 80% worst accuracy: −51% vs Stochastic-AFL, −30% vs DRFA,
−55% vs HierFAVG; FedAvg never reaches the target).

The workload follows the §6.1 preset at the selected scale: multinomial logistic
regression, N_E = 10 edge areas × N0 = 3 clients, one class per edge area,
m_E = 5, τ1 = τ2 = 2 (see :func:`repro.experiments.presets.fig3_preset`).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import build_figure, format_figure_report
from repro.experiments.presets import fig3_preset


def test_fig3_convex(benchmark, repro_scale, repro_seeds, save_report):
    preset = fig3_preset(repro_scale)

    def run():
        return build_figure(preset, seeds=repro_seeds)

    fig = benchmark.pedantic(run, iterations=1, rounds=1)

    report_lines = [format_figure_report(fig), "", "series (worst accuracy):"]
    payload = {"preset": preset.name, "scale": repro_scale,
               "seeds": list(repro_seeds), "series": {}}
    for name, s in fig.series.items():
        payload["series"][name] = {
            "comm_rounds": s.comm_rounds,
            "average_accuracy": s.average_accuracy,
            "worst_accuracy": s.worst_accuracy,
            "rounds_to_target": s.rounds_to_target,
        }
        pts = "  ".join(f"({int(x)},{y:.3f})"
                        for x, y in list(zip(s.comm_rounds, s.worst_accuracy))[::5])
        report_lines.append(f"  {name:15s} {pts}")
    save_report(f"fig3_{repro_scale}", payload, "\n".join(report_lines))

    # Shape assertions (the paper's qualitative claims).
    series = fig.series
    minimax_worst = [series[n].final_worst
                     for n in ("stochastic_afl", "drfa", "hierminimax")]
    minimization_worst = [series[n].final_worst for n in ("fedavg", "hierfavg")]
    # Minimax methods improve the worst case over at least one minimization method,
    # and the best minimax beats the best minimization.
    assert max(minimax_worst) > max(minimization_worst) - 0.02
    assert np.mean(minimax_worst) > np.mean(minimization_worst)
    # HierMinimax reaches the target and is the cheapest minimax method to do so.
    ours = series["hierminimax"].rounds_to_target
    assert ours is not None, "HierMinimax failed to reach the worst-accuracy target"
    for other in ("stochastic_afl", "drfa"):
        theirs = series[other].rounds_to_target
        if theirs is not None:
            assert ours <= theirs * 1.05, (
                f"hierminimax ({ours}) not cheaper than {other} ({theirs})")
