"""Virtual-population bench: fixed-memory training at growing population size.

The headline claim of the population layer is that peak memory tracks the
*sampled cohort*, not the population: a run over 10x the clients at the same
``m_edges`` x ``clients_per_edge`` cohort should allocate (to noise) the same
Python heap.  The bench trains HierMinimax over a small and a 10x population
with identical cohort shape, records both tracemalloc peaks, and distills

* ``mem_independence = peak_small / peak_large`` — the gated ratio; it falls
  below the perf-check floor exactly when the large run's memory starts
  scaling with population size,
* the cohort counters and communication totals of the large run (exact), and
* the raw peaks and wall time (informational ``seconds``; machine-dependent).

``python -m repro perf-check`` compares the distillation against the
committed ``BENCH_population.json`` baseline at the repo root.
"""

from __future__ import annotations

import gc
import time

from repro.core.hierminimax import HierMinimax
from repro.nn.models import make_model_factory
from repro.obs import PeakMemoryTracker
from repro.population import PopulationSpec

# Identical cohort shape (m_edges x clients_per_edge), 10x the population.
SMALL = PopulationSpec.parse(
    "edges=20,clients_per_edge=100,samples=4,test=8,eval_edges=5,seed=0")
LARGE = PopulationSpec.parse(
    "edges=200,clients_per_edge=100,samples=4,test=8,eval_edges=5,seed=0")
M_EDGES = 5
ROUNDS = 5


def _train(spec: PopulationSpec, tracker: PeakMemoryTracker) -> dict:
    """Run the spec and distill scalars only, so nothing heavy is retained
    across runs (a held-over store would inflate the next run's peak)."""
    factory = make_model_factory("logistic", spec.input_dim, spec.num_classes)
    gc.collect()
    tracker.reset_peak()
    baseline = tracker.current_bytes()
    t0 = time.perf_counter()
    algo = HierMinimax(spec, factory, tau1=2, tau2=2, m_edges=M_EDGES,
                       batch_size=4, eta_w=0.05, eta_p=2e-3, seed=0)
    result = algo.run(rounds=ROUNDS)
    wall_s = time.perf_counter() - t0
    pop = algo.population
    return {
        "peak_bytes": tracker.peak_bytes() - baseline,
        "wall_s": wall_s,
        "materialized": pop.clients_materialized_total,
        "max_live": pop.max_live_clients,
        "stored": len(pop.store),
        "comm_bytes": result.comm.total_bytes,
        "average_accuracy": result.history.final().record.average_accuracy,
    }


def test_population_memory_independence(bench_trajectory, save_report):
    """10x the population at the same cohort shape: same heap, more clients."""
    tracker = PeakMemoryTracker()
    try:
        small = _train(SMALL, tracker)
        large = _train(LARGE, tracker)
    finally:
        tracker.close()

    small_peak, large_peak = small["peak_bytes"], large["peak_bytes"]
    independence = small_peak / large_peak

    lines = [
        f"{'population':<22s} {'clients':>10s} {'peak MB':>9s} "
        f"{'materialized':>13s} {'max live':>9s} {'wall s':>7s}",
        f"{'small':<22s} {SMALL.num_clients:>10,d} {small_peak / 1e6:>9.2f} "
        f"{small['materialized']:>13,d} {small['max_live']:>9,d} "
        f"{small['wall_s']:>7.2f}",
        f"{'large (10x)':<22s} {LARGE.num_clients:>10,d} "
        f"{large_peak / 1e6:>9.2f} "
        f"{large['materialized']:>13,d} {large['max_live']:>9,d} "
        f"{large['wall_s']:>7.2f}",
        f"memory independence ratio (small/large): {independence:.3f}",
    ]
    save_report("population_memory", {
        "small": {"clients": SMALL.num_clients, **small},
        "large": {"clients": LARGE.num_clients, **large},
        "independence": independence,
    }, "\n".join(lines))

    bench_trajectory("population", {
        "mem_independence": {"value": independence, "kind": "ratio"},
        "clients_materialized_total": {
            "value": large["materialized"], "kind": "counter"},
        "max_live_clients": {"value": large["max_live"], "kind": "counter"},
        "stored_clients": {"value": large["stored"], "kind": "counter"},
        "total_comm_bytes": {"value": large["comm_bytes"], "kind": "bytes"},
        "final_average_accuracy": {
            "value": large["average_accuracy"], "kind": "exact"},
        "mem_peak_small_bytes": {"value": small_peak, "kind": "seconds"},
        "mem_peak_large_bytes": {"value": large_peak, "kind": "seconds"},
        "wall_large_s": {"value": large["wall_s"], "kind": "seconds"},
    }, context={"small_clients": SMALL.num_clients,
                "large_clients": LARGE.num_clients,
                "m_edges": M_EDGES, "rounds": ROUNDS})

    # The cohort never approached population size, and 10x the population
    # cost (to noise) no extra heap.
    assert large["max_live"] < LARGE.num_clients // 10
    assert independence > 0.5, \
        f"peak memory grew with population size: {small_peak / 1e6:.1f} MB " \
        f"-> {large_peak / 1e6:.1f} MB"
