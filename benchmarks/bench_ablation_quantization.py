"""Ablation bench — quantized uploads (the Hier-Local-QSGD-style extension).

Sweeps the QSGD quantization level on HierMinimax's uplinks (client→edge and
edge→cloud deltas) plus a top-k sparsifier point, at a fixed slot budget, and
reports uplink traffic against final accuracy: the compression/accuracy frontier
that motivates quantized hierarchical FL.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.compression import QSGDQuantizer, TopKSparsifier
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


def test_quantized_uploads(benchmark, repro_scale, save_report):
    slots = 480 if repro_scale == "tiny" else 4000
    scale = "tiny" if repro_scale == "tiny" else "small"
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    eta_w = 0.05 if scale == "tiny" else 0.03
    variants = [
        ("full precision", None),
        ("qsgd s=64", QSGDQuantizer(levels=64)),
        ("qsgd s=8", QSGDQuantizer(levels=8)),
        ("qsgd s=1", QSGDQuantizer(levels=1)),
        ("topk 10% + EF", TopKSparsifier(0.10, error_feedback=True)),
    ]

    def run():
        rows = []
        for label, compressor in variants:
            finals, uplink = [], None
            for seed in (0, 1):
                algo = make_algorithm(
                    "hierminimax", dataset, factory, batch_size=8, eta_w=eta_w,
                    eta_p=2e-3, tau1=2, tau2=2, m_edges=5, seed=seed,
                    compressor=compressor)
                result = algo.run(rounds=slots // 4, eval_every=slots // 4)
                finals.append(result.history.final().record)
                snap = result.comm
                uplink = (snap.floats["client_edge:up"]
                          + snap.floats["edge_cloud:up"]) * 8
            rows.append({
                "variant": label,
                "uplink_bytes": uplink,
                "average_accuracy": float(np.mean([f.average_accuracy
                                                   for f in finals])),
                "worst_accuracy": float(np.mean([f.worst_accuracy
                                                 for f in finals])),
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [f"quantized-uplink sweep at {slots} slots (2-seed means):",
             f"{'variant':>16s} {'uplink bytes':>13s} {'avg acc':>8s} "
             f"{'worst acc':>10s}"]
    for r in rows:
        lines.append(f"{r['variant']:>16s} {r['uplink_bytes']:13.3g} "
                     f"{r['average_accuracy']:8.3f} {r['worst_accuracy']:10.3f}")
    save_report(f"ablation_quantization_{repro_scale}", rows, "\n".join(lines))

    full = rows[0]
    # Quantization shrinks uplink traffic monotonically with coarser levels…
    qsgd_bytes = [r["uplink_bytes"] for r in rows[1:4]]
    assert qsgd_bytes == sorted(qsgd_bytes, reverse=True)
    assert qsgd_bytes[0] < 0.25 * full["uplink_bytes"]
    # …while moderate quantization keeps accuracy close to full precision.
    assert rows[1]["average_accuracy"] > full["average_accuracy"] - 0.05
