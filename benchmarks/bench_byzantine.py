"""Byzantine robustness bench — the attack × defense grid.

Trains HierMinimax on the Fig. 3 layout under a 20% Byzantine roster (one
compromised client in each of the first 20% of edge areas) and sweeps the
:mod:`repro.defense` aggregator suite against the two attack families that
target the algorithm's two phases:

* ``sign_flip`` — model poisoning aimed at the Phase-1 aggregation, and
* ``loss_inflation`` — score poisoning aimed at the Phase-2 minimax weight
  ascent (Eq. (7)).

The headline numbers the grid must reproduce:

* under either attack, the reference **mean** aggregator demonstrably fails —
  its worst-group accuracy collapses far below the clean run; and
* at least one robust configuration recovers worst-group accuracy to within
  5 points of the clean run.

The per-tier structure matters and the grid shows it: the threat model trusts
edge servers, so trimming at the *cloud* tier only discards honest uploads —
the strongest sign-flip defense trims at the edge (where the adversary sits)
and norm-clips at the cloud, while the strongest loss-inflation defense is the
score clip alone with untouched model averaging.
"""

from __future__ import annotations

import numpy as np

from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.defense import AttackPlan
from repro.faults import FaultPlan
from repro.nn.models import make_model_factory
from repro.obs import Tracer

#: Defense grid: every single-name aggregator plus the tuned per-tier combo.
DEFENSES = (
    ("mean", "mean"),
    ("median", "median"),
    ("trimmed_mean", "trimmed_mean,trim=0.34"),
    ("krum", "krum"),
    ("norm_clip", "norm_clip,loss_clip=2.0"),
    ("edge_trim+clip", "edge=trimmed_mean,cloud=norm_clip,trim=0.34,"
                       "loss_clip=2.0"),
)

ATTACKS = (
    ("sign_flip", "scale=5.0"),
    ("loss_inflation", "scale=50.0"),
)


def byzantine_roster(dataset) -> tuple[int, ...]:
    """First client of each of the first 20% × num_edges... edges — a 20%
    roster with exactly one attacker per affected area, so every defense
    faces the same per-cohort breakdown ratio."""
    cpe = dataset.edges[0].num_clients
    n_byz = max(1, round(0.2 * dataset.num_clients))
    return tuple(cpe * e for e in range(min(n_byz, dataset.num_edges)))


def test_byzantine_grid(benchmark, repro_scale, save_report, make_tracer,
                        bench_trajectory):
    scale = "tiny" if repro_scale == "tiny" else "small"
    rounds = 800 if scale == "tiny" else 2000
    eta_w = 0.05 if scale == "tiny" else 0.03
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    roster = byzantine_roster(dataset)

    def train(faults=None, defense=None, obs=None):
        algo = HierMinimax(dataset, factory, batch_size=8, eta_w=eta_w,
                           eta_p=2e-3, tau1=2, tau2=2, m_edges=5, seed=0,
                           faults=faults, defense=defense, obs=obs)
        rec = algo.run(rounds=rounds, eval_every=rounds).history.final().record
        return {"worst_accuracy": float(rec.worst_accuracy),
                "average_accuracy": float(rec.average_accuracy),
                "variance_x1e4": float(rec.variance_x1e4)}

    def run():
        out = {"clean": train(),
               "roster": list(roster),
               "byzantine_fraction": len(roster) / dataset.num_clients,
               "grid": {}}
        for attack, params in ATTACKS:
            plan = FaultPlan(byzantine=AttackPlan.parse(
                f"{attack},clients={'|'.join(map(str, roster))},{params}"))
            row = {}
            for label, defense in DEFENSES:
                obs = Tracer(None)
                row[label] = train(faults=plan, defense=defense, obs=obs)
                counters = obs.snapshot()["counters"]
                row[label]["attacks_injected"] = int(
                    counters.get("byzantine_attacks_total", 0))
                row[label]["uploads_filtered"] = int(
                    counters.get("byzantine_filtered_total", 0))
            out["grid"][attack] = row
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)

    clean = data["clean"]["worst_accuracy"]
    lines = [f"byzantine grid ({len(data['roster'])}/{dataset.num_clients} "
             f"attackers, {rounds} rounds): clean worst acc {clean:.3f}",
             f"{'attack':>15s} {'defense':>15s} {'worst':>7s} {'avg':>7s} "
             f"{'injected':>9s} {'filtered':>9s}"]
    for attack, row in data["grid"].items():
        for label, cell in row.items():
            lines.append(
                f"{attack:>15s} {label:>15s} {cell['worst_accuracy']:7.3f} "
                f"{cell['average_accuracy']:7.3f} "
                f"{cell['attacks_injected']:9d} {cell['uploads_filtered']:9d}")
    save_report(f"byzantine_grid_{repro_scale}", data, "\n".join(lines))

    if scale == "tiny":
        # Perf trajectory (tiny scale only — the baseline is pinned there):
        # tamper/filter totals gate exactly, accuracies are deterministic
        # floats of the fixed-seed run.
        combo_sf = data["grid"]["sign_flip"]["edge_trim+clip"]
        combo_li = data["grid"]["loss_inflation"]["norm_clip"]
        bench_trajectory("byzantine", {
            "sign_flip_attacks_injected": {
                "value": combo_sf["attacks_injected"], "kind": "counter"},
            "sign_flip_uploads_filtered": {
                "value": combo_sf["uploads_filtered"], "kind": "counter"},
            "clean_worst_accuracy": {
                "value": data["clean"]["worst_accuracy"], "kind": "exact"},
            "sign_flip_defended_worst_accuracy": {
                "value": combo_sf["worst_accuracy"], "kind": "exact"},
            "loss_inflation_defended_worst_accuracy": {
                "value": combo_li["worst_accuracy"], "kind": "exact"},
        }, context={"scale": scale, "rounds": rounds,
                    "roster": list(data["roster"])})

    for attack, row in data["grid"].items():
        # The reference mean demonstrably fails under a 20% attack ...
        assert row["mean"]["worst_accuracy"] < clean - 0.20, \
            f"{attack}: mean unexpectedly robust"
        # ... while at least one robust configuration recovers the worst-group
        # accuracy to within 5 points of the clean run.
        best = max(cell["worst_accuracy"] for label, cell in row.items()
                   if label != "mean")
        assert best > clean - 0.05, \
            f"{attack}: best robust defense {best:.3f} vs clean {clean:.3f}"
        # Every attacked cell actually saw tampered uploads; robust cells
        # actually filtered/clipped some of them.
        assert all(cell["attacks_injected"] > 0 for cell in row.values())
        assert any(cell["uploads_filtered"] > 0 for label, cell in row.items()
                   if label != "mean")
