"""Shared configuration of the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper (see DESIGN.md §4)
and prints the reproduced rows/series; raw results are also archived as JSON under
``benchmarks/results/``.

Options
-------
``--repro-scale {tiny,small,paper}``
    Size tier of the experiment benches (default ``small``; ``tiny`` for smoke
    runs, ``paper`` for the full §6 hyperparameters — hours of compute).
``--repro-seeds N``
    Number of seed replicates averaged in the figure benches (default 3).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def pytest_addoption(parser):
    parser.addoption("--repro-scale", action="store", default="small",
                     choices=("tiny", "small", "paper"),
                     help="experiment size tier for the reproduction benches")
    parser.addoption("--repro-seeds", action="store", type=int, default=3,
                     help="seed replicates averaged in figure benches")


@pytest.fixture(scope="session")
def repro_scale(request) -> str:
    return request.config.getoption("--repro-scale")


@pytest.fixture(scope="session")
def repro_seeds(request) -> tuple[int, ...]:
    n = max(1, int(request.config.getoption("--repro-seeds")))
    return tuple(range(n))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def make_tracer(results_dir):
    """Callable fixture: build a :class:`repro.obs.Tracer` whose JSONL trace is
    archived as ``results/<name>.trace.jsonl``.  Tracers are closed at test
    teardown so partial traces still end with their ``trace_end`` record."""
    from repro.obs import Tracer

    tracers: list[Tracer] = []

    def _make(name: str, **kwargs) -> Tracer:
        tracer = Tracer(results_dir / f"{name}.trace.jsonl", **kwargs)
        tracers.append(tracer)
        return tracer

    yield _make
    for tracer in tracers:
        tracer.close()


@pytest.fixture(scope="session")
def bench_trajectory(results_dir):
    """Callable fixture: accumulate normalized perf-trajectory metrics.

    Benches call ``bench_trajectory("substrate", {name: {"value": v, "kind":
    k}}, context={...})`` with the machine-independent distillation of their
    run (counters, traffic bytes, deterministic sim seconds, backend speedup
    ratios; wall times carry kind ``"seconds"`` and never gate).  At session
    teardown each bench's metrics are written as
    ``results/BENCH_<bench>.json`` — the file ``python -m repro perf-check``
    compares against the committed baseline of the same name at the repo
    root.  Metric kinds are validated at contribution time, so a typo fails
    inside the contributing test, not at teardown.
    """
    from repro.obs.perfcheck import normalize_metrics, write_bench

    acc: dict[str, dict] = {}
    contexts: dict[str, dict] = {}

    def _add(bench: str, metrics: dict, *, context: dict | None = None):
        acc.setdefault(bench, {}).update(normalize_metrics(metrics))
        if context:
            contexts.setdefault(bench, {}).update(context)

    yield _add
    for bench, metrics in acc.items():
        write_bench(results_dir / f"BENCH_{bench}.json", bench, metrics,
                    context=contexts.get(bench, {}))


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Callable fixture: archive a payload as JSON, print the text report, and
    append it to the consolidated ``results/reports.txt`` (readable even when
    pytest captures stdout)."""
    from repro.utils.serialization import save_json

    reports_file = results_dir / "reports.txt"

    def _save(name: str, payload, report: str) -> None:
        save_json(results_dir / f"{name}.json", payload)
        with reports_file.open("a") as fh:
            fh.write(f"\n===== {name} =====\n{report}\n")
        print()
        print(report)

    return _save
