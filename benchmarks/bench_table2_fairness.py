"""Table 2 reproduction bench — minimax fairness and variance across five datasets.

Regenerates every row of Table 2: HierFAVG vs HierMinimax on EMNIST-Digits,
Fashion-MNIST, MNIST, Adult (2 edge areas: Doctorate / non-Doctorate), and the
Synthetic dataset of Li et al. (worst-10% accuracy, many edge areas), reporting
average accuracy, worst(-10%) accuracy, and the variance of per-edge-area
accuracies ×10⁴.

Paper shape being reproduced: HierMinimax trades a *slightly* lower average for a
higher worst accuracy and a much lower variance — on every dataset.
"""

from __future__ import annotations

import pytest

from repro.experiments.presets import TABLE2_DATASETS
from repro.experiments.tables import format_table2, table2_row


@pytest.mark.parametrize("dataset", TABLE2_DATASETS)
def test_table2_row(benchmark, dataset, repro_scale, save_report):
    def run():
        return table2_row(dataset, scale=repro_scale, seed=0)

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    payload = [
        {"dataset": r.dataset, "method": r.method, "average": r.average,
         "worst": r.worst, "variance_x1e4": r.variance_x1e4}
        for r in rows
    ]
    save_report(f"table2_{dataset}_{repro_scale}", payload, format_table2(rows))

    by_method = {r.method: r for r in rows}
    favg, ours = by_method["hierfavg"], by_method["hierminimax"]
    # Fairness shape: HierMinimax reduces the accuracy variance across edge areas…
    assert ours.variance_x1e4 < favg.variance_x1e4 * 1.05, (
        f"{dataset}: variance not reduced ({favg.variance_x1e4:.1f} -> "
        f"{ours.variance_x1e4:.1f})")
    # …without collapsing the average (the paper's "small price").
    assert ours.average > favg.average - 0.08
    # …and never substantially degrades the worst case.
    assert ours.worst > favg.worst - 0.05
