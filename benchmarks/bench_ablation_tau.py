"""Ablation bench — the (τ1, τ2) communication/convergence tradeoff of §5.

DESIGN.md calls out the update/aggregation periods as the paper's central design
knob: larger ``τ1·τ2`` cuts edge-cloud communication (Θ(T^{1-α})) at the cost of
convergence (Theorem 1's aggregation terms grow with τ1²τ2²).  This bench runs
HierMinimax at a fixed slot budget across a grid of (τ1, τ2) and reports, for
each point, the edge-cloud cycles actually spent and the final worst/average
accuracy — the empirical tradeoff curve.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


def test_tau_tradeoff(benchmark, repro_scale, save_report):
    slots = 480 if repro_scale == "tiny" else 2400
    grid = ((1, 1), (2, 1), (2, 2), (4, 2), (4, 4))
    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)

    def run():
        rows = []
        for tau1, tau2 in grid:
            per_round = tau1 * tau2
            finals = []
            cycles = None
            for seed in (0, 1):
                algo = make_algorithm(
                    "hierminimax", dataset, factory, batch_size=8, eta_w=0.05,
                    eta_p=2e-3, tau1=tau1, tau2=tau2, m_edges=5, seed=seed)
                result = algo.run(rounds=max(1, slots // per_round),
                                  eval_every=max(1, slots // per_round))
                finals.append(result.history.final().record)
                cycles = result.comm.edge_cloud_cycles
            rows.append({
                "tau1": tau1, "tau2": tau2,
                "edge_cloud_cycles": cycles,
                "client_edge_cycles": result.comm.cycles["client_edge"],
                "average_accuracy": float(np.mean([f.average_accuracy
                                                   for f in finals])),
                "worst_accuracy": float(np.mean([f.worst_accuracy
                                                 for f in finals])),
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [f"(tau1, tau2) tradeoff at a fixed budget of {slots} slots:",
             f"{'tau1':>5s} {'tau2':>5s} {'ec_cycles':>10s} {'ce_cycles':>10s} "
             f"{'avg acc':>8s} {'worst acc':>10s}"]
    for r in rows:
        lines.append(f"{r['tau1']:5d} {r['tau2']:5d} {r['edge_cloud_cycles']:10d} "
                     f"{r['client_edge_cycles']:10d} {r['average_accuracy']:8.3f} "
                     f"{r['worst_accuracy']:10.3f}")
    save_report(f"ablation_tau_{repro_scale}", rows, "\n".join(lines))

    # Edge-cloud communication must fall monotonically as tau1*tau2 grows…
    cycles = [r["edge_cloud_cycles"] for r in rows]
    assert cycles == sorted(cycles, reverse=True)
    # …with exact counts 2*K = 2*slots/(tau1*tau2).
    for r in rows:
        expected = 2 * max(1, slots // (r["tau1"] * r["tau2"]))
        assert r["edge_cloud_cycles"] == expected
    # And every configuration still learns.
    assert all(r["average_accuracy"] > 0.3 for r in rows)
