"""Table 1 reproduction bench — communication complexity vs convergence rate.

Table 1 is analytic: it compares the asymptotic orders of Stochastic-AFL [25],
DRFA [10], and HierMinimax for convex and non-convex losses.  This bench

1. prints the table exactly as published (plus numeric orders at a reference
   horizon), and
2. **verifies the tunable tradeoff empirically**: runs HierMinimax under the §5
   schedules for several α on one convex instance and checks that
   (a) measured edge-cloud communication scales like ``Θ(T^{1-α})`` across α, and
   (b) the measured duality gap of the returned solution is finite, positive, and
   non-exploding as α grows (the paper: larger α trades convergence for
   communication).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.core.schedules import tradeoff_schedule
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory
from repro.theory.duality import duality_gap
from repro.theory.table1 import format_table1
from repro.theory.rates import fit_power_law


def test_table1_analytic_and_empirical(benchmark, repro_scale, save_report):
    T = 1024 if repro_scale != "tiny" else 256
    alphas = (0.0, 0.3, 0.6)
    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny",
                                     num_edges=5, clients_per_edge=2)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)

    def run():
        rows = []
        for alpha in alphas:
            sched = tradeoff_schedule(T, alpha, convex=True, c_w=30.0, c_p=3.0)
            algo = make_algorithm(
                "hierminimax", dataset, factory, batch_size=8,
                eta_w=sched.eta_w, eta_p=sched.eta_p, tau1=sched.tau1,
                tau2=sched.tau2, m_edges=3, seed=0)
            result = algo.run(rounds=sched.rounds, eval_every=sched.rounds)
            gap = duality_gap(algo.engine, result.final_params,
                              result.final_weights, dataset, max_iters=400)
            rows.append({
                "alpha": alpha, "tau1": sched.tau1, "tau2": sched.tau2,
                "rounds": sched.rounds,
                "edge_cloud_cycles": result.comm.edge_cloud_cycles,
                "predicted_complexity": T ** (1 - alpha),
                "duality_gap": gap,
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [format_table1(alpha=0.25, T=T), "",
             f"empirical tradeoff on a convex instance (T = {T} slots):",
             f"{'alpha':>6s} {'tau1*tau2':>9s} {'rounds':>7s} "
             f"{'ec_cycles':>10s} {'~T^(1-a)':>9s} {'duality gap':>12s}"]
    for r in rows:
        lines.append(f"{r['alpha']:6.2f} {r['tau1'] * r['tau2']:9d} "
                     f"{r['rounds']:7d} {r['edge_cloud_cycles']:10d} "
                     f"{r['predicted_complexity']:9.1f} {r['duality_gap']:12.4f}")
    save_report(f"table1_{repro_scale}", rows, "\n".join(lines))

    # (a) measured communication follows the Θ(T^{1-α}) law across α.
    cycles = np.array([r["edge_cloud_cycles"] for r in rows], dtype=float)
    predicted = np.array([r["predicted_complexity"] for r in rows])
    fit = fit_power_law(predicted, cycles)
    assert abs(fit.slope - 1.0) < 0.15, (
        f"communication did not scale with T^(1-alpha): slope {fit.slope:.3f}")
    # (b) the solutions are meaningful (finite positive gaps, no blow-up).
    gaps = [r["duality_gap"] for r in rows]
    assert all(np.isfinite(g) for g in gaps)
    assert all(g > -1e-6 for g in gaps)
    assert max(gaps) < 50 * (min(gaps) + 0.05)
