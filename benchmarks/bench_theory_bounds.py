"""Theory-bound bench — Theorem 1 evaluated against a measured duality gap.

On a small convex instance where everything is computable, this bench

1. estimates the Assumption-1–5 constants empirically,
2. evaluates the Theorem 1 duality-gap bound term by term for the actual
   HierMinimax configuration, and
3. runs HierMinimax and *measures* the duality gap of its averaged solution,

then checks measured ≤ bound (the bound must be valid) and that both shrink as
``T`` grows.  It also reports the Lemma 1 step-size condition and the Theorem 2
bound for reference.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory
from repro.theory.bounds import (
    HierMinimaxBoundInputs,
    lemma1_step_condition,
    theorem1_bound,
    theorem2_bound,
)
from repro.theory.constants import estimate_problem_constants
from repro.theory.duality import duality_gap
from repro.theory.moreau import moreau_envelope


def test_theorem1_bound_vs_measured_gap(benchmark, repro_scale, save_report):
    horizons = (128, 512) if repro_scale == "tiny" else (256, 1024)
    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny",
                                     num_edges=5, clients_per_edge=2)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    eta_w, eta_p, tau1, tau2, m_edges = 0.02, 1e-3, 2, 2, 3

    def run():
        engine = factory(0)
        constants = estimate_problem_constants(
            dataset, engine, num_probes=4, probe_radius=0.5,
            rng=np.random.default_rng(0))
        out = []
        for T in horizons:
            cfg = HierMinimaxBoundInputs(
                eta_w=eta_w, eta_p=eta_p, tau1=tau1, tau2=tau2,
                m_edges=m_edges, n0=2, n_edges=5, T=T)
            bound = theorem1_bound(cfg, constants)
            algo = make_algorithm("hierminimax", dataset, factory, batch_size=8,
                                  eta_w=eta_w, eta_p=eta_p, tau1=tau1, tau2=tau2,
                                  m_edges=m_edges, seed=0)
            result = algo.run(rounds=cfg.rounds, eval_every=cfg.rounds)
            measured = duality_gap(algo.engine, result.final_params,
                                   result.final_weights, dataset, max_iters=400)
            phi0, _ = moreau_envelope(algo.engine, factory(0).get_params(),
                                      dataset, lam=1.0 / (2 * constants.L),
                                      max_iters=60)
            t2 = theorem2_bound(cfg, constants, phi0=phi0)
            out.append({
                "T": T, "measured_gap": measured, "theorem1_bound": bound.total,
                "bound_terms": {
                    "maximization_gap": bound.maximization_gap,
                    "minimization_gap": bound.minimization_gap,
                    "client_edge_aggregation": bound.client_edge_aggregation,
                    "edge_cloud_aggregation": bound.edge_cloud_aggregation,
                },
                "lemma1_step_ok": lemma1_step_condition(cfg, constants),
                "theorem2_bound": t2.total,
            })
        return {"constants": constants.as_dict(), "per_horizon": out}

    data = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Theorem 1 duality-gap bound vs measured gap (convex instance):",
             f"constants: " + " ".join(f"{k}={v:.3g}"
                                       for k, v in data["constants"].items()),
             f"{'T':>6s} {'measured':>10s} {'Thm1 bound':>12s} "
             f"{'Thm2 bound':>12s} {'Lem1 step ok':>13s}"]
    for row in data["per_horizon"]:
        lines.append(f"{row['T']:6d} {row['measured_gap']:10.4f} "
                     f"{row['theorem1_bound']:12.4f} {row['theorem2_bound']:12.4f} "
                     f"{str(row['lemma1_step_ok']):>13s}")
    save_report(f"theory_bounds_{repro_scale}", data, "\n".join(lines))

    for row in data["per_horizon"]:
        assert row["measured_gap"] <= row["theorem1_bound"], (
            f"T={row['T']}: measured gap {row['measured_gap']:.4f} exceeds the "
            f"Theorem 1 bound {row['theorem1_bound']:.4f}")
        assert row["measured_gap"] > -1e-6
    # The measured gap must shrink with the horizon.
    gaps = [row["measured_gap"] for row in data["per_horizon"]]
    assert gaps[-1] < gaps[0] + 0.05
