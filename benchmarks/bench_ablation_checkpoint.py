"""Ablation bench — the checkpoint mechanism of Algorithm 1 Part (b).

The checkpoint (a uniformly-sampled intermediate model, Eqs. (6)–(7)) is what
keeps the weight-ascent direction unbiased for the round's iterates; the obvious
shortcut is to probe losses at the round-final model instead (biased toward the
post-update iterate).  This bench compares the two variants at equal budgets:

* fairness outcome (worst accuracy, variance), and
* upload volume (the checkpoint costs an extra model-sized upload per sampled
  edge per round — visible in the byte accounting).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


def test_checkpoint_mechanism(benchmark, repro_scale, save_report):
    slots = 480 if repro_scale == "tiny" else 4000
    scale = "tiny" if repro_scale == "tiny" else "small"
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    eta_w = 0.05 if scale == "tiny" else 0.03

    def run():
        out = {}
        for label, use_checkpoint in (("checkpoint", True), ("final_model", False)):
            finals, bytes_up = [], None
            for seed in (0, 1, 2):
                algo = make_algorithm(
                    "hierminimax", dataset, factory, batch_size=8, eta_w=eta_w,
                    eta_p=2e-3, tau1=2, tau2=2, m_edges=5, seed=seed,
                    use_checkpoint=use_checkpoint)
                result = algo.run(rounds=slots // 4, eval_every=slots // 4)
                finals.append(result.history.final().record)
                bytes_up = result.comm.total_bytes
            out[label] = {
                "worst_accuracy": float(np.mean([f.worst_accuracy for f in finals])),
                "average_accuracy": float(np.mean([f.average_accuracy
                                                   for f in finals])),
                "variance_x1e4": float(np.mean([f.variance_x1e4 for f in finals])),
                "total_bytes": bytes_up,
            }
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["checkpoint-mechanism ablation (3-seed means):",
             f"{'variant':>12s} {'avg acc':>8s} {'worst acc':>10s} "
             f"{'var x1e4':>9s} {'bytes':>12s}"]
    for label, row in data.items():
        lines.append(f"{label:>12s} {row['average_accuracy']:8.3f} "
                     f"{row['worst_accuracy']:10.3f} {row['variance_x1e4']:9.1f} "
                     f"{row['total_bytes']:12.3g}")
    save_report(f"ablation_checkpoint_{repro_scale}", data, "\n".join(lines))

    ck, fm = data["checkpoint"], data["final_model"]
    # The checkpoint's extra upload is visible in the byte accounting.
    assert ck["total_bytes"] > fm["total_bytes"]
    # Both variants learn; the unbiased variant must not be materially worse on
    # the worst case (it is the theoretically sound one).
    assert ck["worst_accuracy"] > fm["worst_accuracy"] - 0.05
    assert ck["average_accuracy"] > 0.3 and fm["average_accuracy"] > 0.3
