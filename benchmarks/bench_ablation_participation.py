"""Ablation bench — partial edge participation (the m_E knob).

Algorithm 1 samples ``m_E ≤ N_E`` edge servers per phase.  Smaller ``m_E`` cuts
per-round traffic linearly but raises the variance of both the model aggregate
(Eq. (5)) and the weight-gradient estimate (the ``N_E/m_E`` scaling of ``v``).
This bench sweeps ``m_E`` at a fixed slot budget and reports accuracy and traffic,
verifying the linear per-round traffic scaling and that learning survives down to
small participation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import make_model_factory


def test_partial_participation(benchmark, repro_scale, save_report):
    slots = 480 if repro_scale == "tiny" else 4000
    scale = "tiny" if repro_scale == "tiny" else "small"
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    eta_w = 0.05 if scale == "tiny" else 0.03
    sweep = (2, 5, 10)

    def run():
        rows = []
        for m_edges in sweep:
            finals, comm = [], None
            for seed in (0, 1):
                algo = make_algorithm(
                    "hierminimax", dataset, factory, batch_size=8, eta_w=eta_w,
                    eta_p=2e-3, tau1=2, tau2=2, m_edges=m_edges, seed=seed)
                result = algo.run(rounds=slots // 4, eval_every=slots // 4)
                finals.append(result.history.final().record)
                comm = result.comm
            rows.append({
                "m_edges": m_edges,
                "total_bytes": comm.total_bytes,
                "client_edge_cycles": comm.cycles["client_edge"],
                "average_accuracy": float(np.mean([f.average_accuracy
                                                   for f in finals])),
                "worst_accuracy": float(np.mean([f.worst_accuracy
                                                 for f in finals])),
            })
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [f"partial-participation sweep at {slots} slots:",
             f"{'m_E':>4s} {'bytes':>12s} {'ce_cycles':>10s} "
             f"{'avg acc':>8s} {'worst acc':>10s}"]
    for r in rows:
        lines.append(f"{r['m_edges']:4d} {r['total_bytes']:12.3g} "
                     f"{r['client_edge_cycles']:10d} {r['average_accuracy']:8.3f} "
                     f"{r['worst_accuracy']:10.3f}")
    save_report(f"ablation_participation_{repro_scale}", rows, "\n".join(lines))

    # Per-round client-edge traffic scales linearly with m_E: K * m_E * (tau2+1).
    K = slots // 4
    for r in rows:
        assert r["client_edge_cycles"] == K * r["m_edges"] * 3
    bytes_ = [r["total_bytes"] for r in rows]
    assert bytes_ == sorted(bytes_)
    # Full participation must be at least as accurate on average as m_E = 2.
    assert rows[-1]["average_accuracy"] >= rows[0]["average_accuracy"] - 0.05
    assert all(r["average_accuracy"] > 0.3 for r in rows)
