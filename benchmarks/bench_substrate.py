"""Micro-benchmarks of the hot substrate kernels.

These are classic pytest-benchmark timings (many iterations) of the operations
the simulation spends its time in — the targets any optimization work should be
measured against, per the profile-first workflow of the HPC guides:

* fused forward+backward of the two paper models,
* the simplex projection behind every weight update,
* client-edge aggregation (weighted averaging of model vectors),
* one full HierMinimax training round,
* per-phase wall-clock attribution of a traced experiment run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import logistic_regression, make_model_factory, mlp
from repro.ops.numerics import weighted_average
from repro.ops.projections import project_capped_simplex, project_simplex


@pytest.fixture(scope="module")
def batch():
    gen = np.random.default_rng(0)
    X = gen.normal(size=(8, 784))
    y = gen.integers(0, 10, size=8)
    return X, y


def test_logistic_loss_and_gradient(benchmark, batch):
    """Paper model #1: 7850-parameter multinomial logistic regression."""
    X, y = batch
    model = logistic_regression(784, 10, rng=0)
    benchmark(model.loss_and_gradient, X, y)


def test_mlp_loss_and_gradient(benchmark, batch):
    """Paper model #2: 266,610-parameter MLP(300, 100)."""
    X, y = batch
    model = mlp(784, (300, 100), 10, rng=0)
    benchmark(model.loss_and_gradient, X, y)


def test_simplex_projection(benchmark):
    """Eq. (7)'s Π_P on a 100-edge weight vector (the Synthetic row's size)."""
    gen = np.random.default_rng(0)
    v = gen.normal(size=100)
    out = benchmark(project_simplex, v)
    assert abs(out.sum() - 1.0) < 1e-9


def test_capped_simplex_projection(benchmark):
    """The general-constraint variant of Π_P (bisection solve)."""
    gen = np.random.default_rng(0)
    v = gen.normal(size=100)
    out = benchmark(project_capped_simplex, v, 0.001, 0.5)
    assert abs(out.sum() - 1.0) < 1e-6


def test_model_aggregation(benchmark):
    """Client-edge aggregation of 10 MLP-sized parameter vectors."""
    gen = np.random.default_rng(0)
    models = gen.normal(size=(10, 266_610))
    weights = gen.random(10) + 0.1
    benchmark(weighted_average, models, weights)


def test_hierminimax_round(benchmark):
    """One full Algorithm 1 training round on the tiny EMNIST layout."""
    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    algo = make_algorithm("hierminimax", dataset, factory, batch_size=8,
                          eta_w=0.05, eta_p=2e-3, tau1=2, tau2=2, m_edges=5,
                          seed=0)
    counter = iter(range(10**9))

    def one_round():
        algo.run_round(next(counter))

    benchmark(one_round)


def test_phase_attribution(make_tracer, save_report):
    """Where does a traced experiment run spend its time?

    Runs the tiny Fig. 3 preset under a :class:`repro.obs.Tracer` and archives
    the per-algorithm span breakdown (phase1 / phase2 / evaluate / edge_block /
    client_local_steps), the metric snapshot, and the JSONL trace itself —
    the observability layer's answer to "which phase should optimization work
    target".
    """
    from repro.experiments.presets import fig3_preset
    from repro.experiments.runner import run_experiment

    preset = fig3_preset(scale="tiny").with_overrides(slots=240, eval_points=4)
    tracer = make_tracer("phase_attribution", meta={"bench": "substrate"},
                         write_max_depth=2)
    out = run_experiment(preset, seed=0, obs=tracer)
    tracer.close()

    lines = ["algorithm            phase                       seconds"]
    containers = ("run", "cloud_round")  # wrappers, not phases
    for name, phases in out.phase_times.items():
        for span, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            if span not in containers:
                lines.append(f"{name:<20s} {span:<26s} {seconds:8.3f}")
    counters = out.metrics.get("counters", {})
    lines.append(f"sgd_steps_total = {counters.get('sgd_steps_total', 0)}   "
                 f"edge_cloud_bytes = {counters.get('edge_cloud_bytes', 0)}")
    report = "\n".join(lines)
    save_report("phase_attribution",
                {"phase_times": {k: dict(v) for k, v in out.phase_times.items()},
                 "setup_times": dict(out.setup_times),
                 "metrics": out.metrics}, report)
    assert out.phase_times, "tracer produced no per-phase attribution"
    for name in preset.algorithms:
        assert name in out.phase_times
