"""Micro-benchmarks of the hot substrate kernels.

These are classic pytest-benchmark timings (many iterations) of the operations
the simulation spends its time in — the targets any optimization work should be
measured against, per the profile-first workflow of the HPC guides:

* fused forward+backward of the two paper models,
* the simplex projection behind every weight update,
* client-edge aggregation (weighted averaging of model vectors),
* one full HierMinimax training round,
* per-phase wall-clock attribution of a traced experiment run,
* serial-vs-parallel dispatch speedup of the execution backends.

All phase timings come from the observability layer's span data (one shared
timing source), never from per-bench ad-hoc timers — so the per-phase numbers
and the backend comparisons are directly comparable across reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import make_algorithm
from repro.data.registry import make_federated_dataset
from repro.nn.models import logistic_regression, make_model_factory, mlp
from repro.ops.numerics import weighted_average
from repro.ops.projections import project_capped_simplex, project_simplex


@pytest.fixture(scope="module")
def batch():
    gen = np.random.default_rng(0)
    X = gen.normal(size=(8, 784))
    y = gen.integers(0, 10, size=8)
    return X, y


def test_logistic_loss_and_gradient(benchmark, batch):
    """Paper model #1: 7850-parameter multinomial logistic regression."""
    X, y = batch
    model = logistic_regression(784, 10, rng=0)
    benchmark(model.loss_and_gradient, X, y)


def test_mlp_loss_and_gradient(benchmark, batch):
    """Paper model #2: 266,610-parameter MLP(300, 100)."""
    X, y = batch
    model = mlp(784, (300, 100), 10, rng=0)
    benchmark(model.loss_and_gradient, X, y)


def test_simplex_projection(benchmark):
    """Eq. (7)'s Π_P on a 100-edge weight vector (the Synthetic row's size)."""
    gen = np.random.default_rng(0)
    v = gen.normal(size=100)
    out = benchmark(project_simplex, v)
    assert abs(out.sum() - 1.0) < 1e-9


def test_capped_simplex_projection(benchmark):
    """The general-constraint variant of Π_P (bisection solve)."""
    gen = np.random.default_rng(0)
    v = gen.normal(size=100)
    out = benchmark(project_capped_simplex, v, 0.001, 0.5)
    assert abs(out.sum() - 1.0) < 1e-6


def test_model_aggregation(benchmark):
    """Client-edge aggregation of 10 MLP-sized parameter vectors."""
    gen = np.random.default_rng(0)
    models = gen.normal(size=(10, 266_610))
    weights = gen.random(10) + 0.1
    benchmark(weighted_average, models, weights)


def test_hierminimax_round(benchmark):
    """One full Algorithm 1 training round on the tiny EMNIST layout."""
    dataset = make_federated_dataset("emnist_digits", seed=0, scale="tiny")
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    algo = make_algorithm("hierminimax", dataset, factory, batch_size=8,
                          eta_w=0.05, eta_p=2e-3, tau1=2, tau2=2, m_edges=5,
                          seed=0)
    counter = iter(range(10**9))

    def one_round():
        algo.run_round(next(counter))

    benchmark(one_round)


def test_phase_attribution(make_tracer, save_report, bench_trajectory):
    """Where does a traced experiment run spend its time?

    Runs the tiny Fig. 3 preset under a :class:`repro.obs.Tracer` and archives
    the per-algorithm span breakdown (phase1 / phase2 / evaluate / edge_block /
    client_local_steps), the metric snapshot, and the JSONL trace itself —
    the observability layer's answer to "which phase should optimization work
    target".
    """
    from repro.experiments.presets import fig3_preset
    from repro.experiments.runner import run_experiment

    preset = fig3_preset(scale="tiny").with_overrides(slots=240, eval_points=4)
    tracer = make_tracer("phase_attribution", meta={"bench": "substrate"},
                         write_max_depth=2)
    out = run_experiment(preset, seed=0, obs=tracer)
    tracer.close()

    lines = ["algorithm            phase                       seconds"]
    containers = ("cloud_round",)  # wrapper, not a phase
    for name, phases in out.phase_times.items():
        # The "run" span is the tracer's own wall-clock for the whole training
        # run — the span-derived replacement for any ad-hoc outer timer.
        for span, seconds in sorted(phases.items(), key=lambda kv: -kv[1]):
            if span not in containers:
                label = "total (run span)" if span == "run" else span
                lines.append(f"{name:<20s} {label:<26s} {seconds:8.3f}")
    counters = out.metrics.get("counters", {})
    lines.append(f"sgd_steps_total = {counters.get('sgd_steps_total', 0)}   "
                 f"edge_cloud_bytes = {counters.get('edge_cloud_bytes', 0)}")
    report = "\n".join(lines)
    save_report("phase_attribution",
                {"phase_times": {k: dict(v) for k, v in out.phase_times.items()},
                 "setup_times": dict(out.setup_times),
                 "metrics": out.metrics}, report)
    # Perf trajectory: the preset is pinned to the tiny scale, so the work
    # and traffic totals are machine-independent and gate exactly.
    wall_s = sum(phases.get("run", 0.0) for phases in out.phase_times.values())
    bench_trajectory("substrate", {
        "phase_attribution_sgd_steps": {
            "value": counters.get("sgd_steps_total", 0), "kind": "counter"},
        "phase_attribution_edge_cloud_bytes": {
            "value": counters.get("edge_cloud_bytes", 0), "kind": "bytes"},
        "phase_attribution_wall_s": {"value": wall_s, "kind": "seconds"},
    }, context={"preset": "fig3/tiny", "slots": 240})
    assert out.phase_times, "tracer produced no per-phase attribution"
    for name in preset.algorithms:
        assert name in out.phase_times


def test_backend_speedup(save_report, bench_trajectory):
    """Serial-vs-parallel dispatch of a 32-client round (execution backends).

    Dispatches the same 32-client × τ1-step local-training round through every
    execution backend and reports wall-clock, speedup, and worker telemetry.
    Every number is read back from tracer *span data* (an ``exec_dispatch``
    span wraps each round) so all backends share one timing source; the
    per-backend worker-busy / broadcast-bytes metrics come from the same
    tracer snapshot.  The dispatch results are also checked bit-identical to
    serial — the speedup is free, not bought with the determinism contract.
    """
    from repro.data.registry import make_federated_dataset
    from repro.exec import ClientWork, available_backends, make_backend, \
        run_local_steps
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer
    from repro.sim.builder import build_flat_clients
    from repro.utils.rng import RngFactory

    rounds, steps, workers = 30, 4, 2
    fed = make_federated_dataset("emnist_digits", scale="tiny", seed=0,
                                 num_edges=8, clients_per_edge=4,
                                 partition="similarity")
    factory = make_model_factory("logistic", fed.input_dim, fed.num_classes)
    assert fed.num_clients == 32

    def dispatch_rounds(name):
        """Run the round `rounds` times on backend `name`; span-timed."""
        engine = factory()
        clients = build_flat_clients(fed, batch_size=8,
                                     rng_factory=RngFactory(5))
        tracer = Tracer(None)  # metrics/span collection only, no JSONL file
        w = np.zeros(engine.params_view().size)
        finals = None
        with make_backend(name, workers=workers) as b:
            for _ in range(rounds):
                work = [ClientWork(c, steps) for c in clients]
                with tracer.span("exec_dispatch", backend=name):
                    results = run_local_steps(b, engine, w, work, lr=0.05,
                                              obs=tracer)
                finals = np.stack([r.w_end for r in results])
        seconds = tracer.span_totals()["exec_dispatch"]["total_s"]
        snap = tracer.snapshot()
        telemetry = {
            "busy_s": snap["histograms"].get("exec_worker_busy_s",
                                             {}).get("sum", seconds),
            "broadcast_bytes": snap["counters"].get("exec_broadcast_bytes", 0),
        }
        tracer.close()
        return seconds, finals, telemetry

    serial_s, serial_w, _ = dispatch_rounds("serial")
    lines = [f"32 clients x {steps} local steps x {rounds} rounds "
             f"(logistic, d={fed.input_dim * fed.num_classes + fed.num_classes})",
             f"{'backend':<12s} {'seconds':>8s} {'speedup':>8s} "
             f"{'busy_s':>8s} {'bcast_MB':>9s}  identical"]
    rows = {"serial": {"seconds": serial_s, "speedup": 1.0}}
    speedups = {}
    for name in available_backends():
        if name == "serial":
            lines.append(f"{'serial':<12s} {serial_s:8.3f} {'1.00x':>8s} "
                         f"{serial_s:8.3f} {0.0:9.2f}  True")
            continue
        seconds, finals, telemetry = dispatch_rounds(name)
        identical = bool(np.array_equal(serial_w, finals))
        speedups[name] = serial_s / seconds
        rows[name] = {"seconds": seconds, "speedup": speedups[name],
                      "worker_busy_s": telemetry["busy_s"],
                      "broadcast_bytes": telemetry["broadcast_bytes"],
                      "identical": identical}
        lines.append(
            f"{name:<12s} {seconds:8.3f} {speedups[name]:7.2f}x "
            f"{telemetry['busy_s']:8.3f} "
            f"{telemetry['broadcast_bytes'] / 1e6:9.2f}  "
            f"{identical}")
        assert identical, f"{name} backend diverged from serial bits"
    report = "\n".join(lines)
    save_report("backend_speedup",
                {"rounds": rounds, "steps": steps, "workers": workers,
                 "clients": fed.num_clients, "backends": rows}, report)
    # Perf trajectory: the vectorized speedup is the one backend ratio that
    # must hold on any machine (it removes Python overhead, not waits on
    # cores), so it gates; thread/process depend on the runner's cores and
    # ride along as context only.  Broadcast bytes are deterministic traffic.
    bench_trajectory("substrate", {
        "backend_speedup_vectorized": {
            "value": speedups["vectorized"], "kind": "ratio"},
        "backend_broadcast_bytes_process": {
            "value": rows["process"]["broadcast_bytes"], "kind": "bytes"},
        "backend_serial_wall_s": {"value": serial_s, "kind": "seconds"},
    }, context={"clients": fed.num_clients, "rounds": rounds, "steps": steps,
                "speedup_thread": round(speedups.get("thread", 0.0), 3),
                "speedup_process": round(speedups.get("process", 0.0), 3)})
    # Acceptance: ≥2x for a 32-client round.  The vectorized backend removes
    # the per-client Python overhead, so it must deliver even on one core;
    # thread/process only help with real cores to spread across.
    assert speedups["vectorized"] >= 2.0, (
        f"vectorized speedup {speedups['vectorized']:.2f}x < 2x")


def test_backend_speedup_mlp(save_report, bench_trajectory):
    """Batched MLP kernel vs serial dispatch of a 32-client round.

    Same shape as :func:`test_backend_speedup` but with the non-convex MLP
    engine — the case the vectorized backend used to punt to the per-client
    serial fallback.  The tracer's ``exec_vectorized_tasks_total`` counter
    proves every task actually took the batched path (a silent fallback would
    "pass" the bit-identity check at serial speed), and the dispatch results
    stay bit-identical to serial.
    """
    from repro.data.registry import make_federated_dataset
    from repro.exec import ClientWork, make_backend, run_local_steps
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer
    from repro.sim.builder import build_flat_clients
    from repro.utils.rng import RngFactory

    rounds, steps, hidden = 30, 4, (16,)
    fed = make_federated_dataset("emnist_digits", scale="tiny", seed=0,
                                 num_edges=8, clients_per_edge=4,
                                 partition="similarity")
    factory = make_model_factory("mlp", fed.input_dim, fed.num_classes,
                                 hidden=hidden)
    assert fed.num_clients == 32

    def dispatch_rounds(name):
        engine = factory()
        clients = build_flat_clients(fed, batch_size=8,
                                     rng_factory=RngFactory(5))
        tracer = Tracer(None)
        w = np.zeros(engine.num_parameters)
        finals = None
        with make_backend(name, workers=2) as b:
            for _ in range(rounds):
                work = [ClientWork(c, steps) for c in clients]
                with tracer.span("exec_dispatch", backend=name):
                    results = run_local_steps(b, engine, w, work, lr=0.05,
                                              obs=tracer)
                finals = np.stack([r.w_end for r in results])
        seconds = tracer.span_totals()["exec_dispatch"]["total_s"]
        counters = tracer.snapshot()["counters"]
        tracer.close()
        return seconds, finals, counters

    serial_s, serial_w, _ = dispatch_rounds("serial")
    vec_s, vec_w, counters = dispatch_rounds("vectorized")
    batched = int(counters.get("exec_vectorized_tasks_total", 0))
    assert batched == rounds * fed.num_clients, (
        f"MLP tasks fell back to serial: {batched} of "
        f"{rounds * fed.num_clients} took the batched kernel")
    assert np.array_equal(serial_w, vec_w), (
        "batched MLP kernel diverged from serial bits")
    speedup = serial_s / vec_s
    report = (f"32 clients x {steps} steps x {rounds} rounds "
              f"(mlp{hidden}, d={factory().num_parameters})\n"
              f"serial     {serial_s:8.3f}s\n"
              f"vectorized {vec_s:8.3f}s  {speedup:.2f}x  "
              f"batched_tasks={batched}")
    save_report("backend_speedup_mlp",
                {"rounds": rounds, "steps": steps, "hidden": list(hidden),
                 "serial_s": serial_s, "vectorized_s": vec_s,
                 "speedup": speedup, "batched_tasks": batched}, report)
    bench_trajectory("substrate", {
        "backend_speedup_vectorized_mlp": {"value": speedup, "kind": "ratio"},
        "backend_mlp_batched_tasks": {"value": batched, "kind": "counter"},
        "backend_serial_mlp_wall_s": {"value": serial_s, "kind": "seconds"},
    }, context={"clients": fed.num_clients, "rounds": rounds, "steps": steps,
                "hidden": list(hidden)})
    # Acceptance (ISSUE 10): ≥2x batched-MLP round speedup over serial at 32
    # clients; the archived ratio above makes perf-check hold it in CI.
    assert speedup >= 2.0, f"batched MLP speedup {speedup:.2f}x < 2x"


def test_fused_evaluation(save_report, bench_trajectory):
    """Fused accuracy+loss kernel vs the old two-forward-pass evaluation.

    Times :meth:`NeuralNetwork.accuracy_and_loss` against the pre-fusion
    equivalent (``accuracy`` then ``loss``) on the stacked edge test sets —
    the matrix size where the forward pass, not Python overhead, carries the
    cost, so the ratio is stable enough to gate.  Both sides are span-timed
    by one tracer so the comparison shares a timing source.  The sweep-level
    contract (``evaluate_per_edge`` byte-identical to the two-pass loop over
    every edge) is asserted alongside, untimed.
    """
    from repro.data.registry import make_federated_dataset
    from repro.metrics.evaluation import evaluate_per_edge
    from repro.nn.models import make_model_factory
    from repro.obs import Tracer

    sweeps = 100
    fed = make_federated_dataset("emnist_digits", scale="tiny", seed=0,
                                 num_edges=8, clients_per_edge=4,
                                 partition="similarity")
    engine = make_model_factory("mlp", fed.input_dim, fed.num_classes,
                                hidden=(64,), l2=1e-3)()
    engine.initialize(0)
    w = engine.get_params()
    X = np.tile(np.concatenate([e.test.X for e in fed.edges]), (10, 1))
    y = np.tile(np.concatenate([e.test.y for e in fed.edges]), 10)

    tracer = Tracer(None)
    for _ in range(sweeps):
        with tracer.span("eval_two_pass"):
            acc_old, loss_old = engine.accuracy(X, y), engine.loss(X, y)
        with tracer.span("eval_fused"):
            acc_new, loss_new = engine.accuracy_and_loss(X, y)
    totals = tracer.span_totals()
    tracer.close()
    assert (acc_old, loss_old) == (acc_new, loss_new), (
        "fused kernel diverged from the two-pass results")
    sweep_old = np.array([[engine.accuracy(e.test.X, e.test.y),
                           engine.loss(e.test.X, e.test.y)]
                          for e in fed.edges])
    sweep_acc, sweep_loss = evaluate_per_edge(engine, w, fed)
    assert sweep_old[:, 0].tobytes() == sweep_acc.tobytes(), (
        "fused evaluate_per_edge accuracy diverged from the two-pass bytes")
    assert sweep_old[:, 1].tobytes() == sweep_loss.tobytes(), (
        "fused evaluate_per_edge loss diverged from the two-pass bytes")
    old_s = totals["eval_two_pass"]["total_s"]
    new_s = totals["eval_fused"]["total_s"]
    speedup = old_s / new_s
    report = (f"{X.shape[0]} rows x {sweeps} sweeps (mlp(64,))\n"
              f"two-pass {old_s:8.3f}s\nfused    {new_s:8.3f}s  "
              f"{speedup:.2f}x")
    save_report("fused_evaluation",
                {"sweeps": sweeps, "rows": int(X.shape[0]),
                 "two_pass_s": old_s, "fused_s": new_s,
                 "speedup": speedup}, report)
    bench_trajectory("substrate", {
        "eval_fused_speedup": {"value": speedup, "kind": "ratio"},
    }, context={"rows": int(X.shape[0]), "sweeps": sweeps})
    assert speedup >= 1.2, (
        f"fused evaluation barely beats two-pass ({speedup:.2f}x)")
