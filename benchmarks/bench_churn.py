"""Dynamic-membership bench — the 20% edge-crash campaign.

Trains HierMinimax on the Fig. 3 layout while a seeded :class:`repro.membership.
ChurnPlan` crashes edge servers (two-state Markov episodes tuned so roughly 20%
of edges are dark in steady state) and churns the client population, then
compares three arms:

* ``clean`` — no churn plan bound (the static-hierarchy reference),
* ``rehome`` — the self-healing run: orphans of a crashed edge are re-homed to
  surviving edges and the edge state is handed off, and
* ``no_rehome`` — the same crash campaign with failover disabled: clients of a
  dark edge simply vanish from the round.

The headline numbers the bench must reproduce:

* with re-homing, worst-group accuracy survives the campaign — it is at least
  the no-failover arm's and within a few points of the clean run, while the
  no-failover arm demonstrably degrades; and
* self-healing is not free — re-homing and state handoff are charged to the
  PR-5 cost model and the comm tracker, so the re-homed arm's simulated
  makespan and traffic exceed the no-failover arm's.

The membership ledger must also balance on the re-homed arm: arrivals minus
departures equal the net change of the active population.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.hierminimax import HierMinimax
from repro.data.registry import make_federated_dataset
from repro.membership import ChurnPlan
from repro.nn.models import make_model_factory
from repro.obs import Tracer
from repro.simtime import SimTimer, make_cost_model

#: Edge crashes with ~20% steady-state downtime (mttr / (mttf + mttr) = 0.2)
#: plus mild client churn; every decision is a pure function of seed=1.
CHURN_SPEC = "arrive=0.05,depart=0.02,edge_mttf=8,edge_mttr=2,seed=1"

COST_SPEC = "hetero,seed=1"


def test_churn_campaign(benchmark, repro_scale, save_report, make_tracer,
                        bench_trajectory):
    scale = "tiny" if repro_scale == "tiny" else "small"
    rounds = 300 if scale == "tiny" else 800
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)
    plan = ChurnPlan.parse(CHURN_SPEC)

    def train(churn=None, obs=None):
        algo = HierMinimax(dataset, factory, batch_size=8, eta_w=0.05,
                           eta_p=2e-3, tau1=2, tau2=2, m_edges=5, seed=0,
                           churn=churn, obs=obs,
                           timing=SimTimer(make_cost_model(COST_SPEC)))
        initial = len(algo.membership.active) if algo.membership.enabled \
            else dataset.num_clients
        res = algo.run(rounds=rounds, eval_every=rounds)
        rec = res.history.final().record
        return {"worst_accuracy": float(rec.worst_accuracy),
                "average_accuracy": float(rec.average_accuracy),
                "traffic_bytes": int(res.comm.total_bytes),
                "sim_time_s": float(res.sim_time_s),
                "initial_active": int(initial),
                "final_active": int(len(algo.membership.active))
                if algo.membership.enabled else int(dataset.num_clients)}

    def run():
        tracer = make_tracer(f"churn_{repro_scale}")
        out = {"spec": CHURN_SPEC, "rounds": rounds,
               "clean": train(),
               "rehome": train(churn=plan, obs=tracer),
               "no_rehome": train(churn=replace(plan, rehome=False))}
        counters = tracer.snapshot()["counters"]
        out["counters"] = {k: int(v) for k, v in counters.items()
                           if k.startswith("membership_")}
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)
    counters = data["counters"]

    lines = [f"churn campaign ({CHURN_SPEC}, {rounds} rounds)",
             f"{'arm':>12s} {'worst':>7s} {'avg':>7s} {'MB':>8s} "
             f"{'sim s':>9s} {'pop':>9s}"]
    for arm in ("clean", "rehome", "no_rehome"):
        cell = data[arm]
        lines.append(f"{arm:>12s} {cell['worst_accuracy']:7.3f} "
                     f"{cell['average_accuracy']:7.3f} "
                     f"{cell['traffic_bytes'] / 1e6:8.2f} "
                     f"{cell['sim_time_s']:9.2f} "
                     f"{cell['initial_active']:>4d}->{cell['final_active']:<4d}")
    lines.append("membership: " + "  ".join(
        f"{k.removeprefix('membership_').removesuffix('_total')}={v}"
        for k, v in sorted(counters.items())))
    save_report(f"churn_campaign_{repro_scale}", data, "\n".join(lines))

    if scale == "tiny":
        # Perf trajectory (tiny scale only): crash/re-home totals gate
        # exactly, accuracies are deterministic floats of the fixed-seed run.
        bench_trajectory("churn", {
            "edge_crashes": {
                "value": counters.get("membership_edge_crashes_total", 0),
                "kind": "counter"},
            "clients_rehomed": {
                "value": counters.get("membership_rehomed_total", 0),
                "kind": "counter"},
            "clean_worst_accuracy": {
                "value": data["clean"]["worst_accuracy"], "kind": "exact"},
            "rehome_worst_accuracy": {
                "value": data["rehome"]["worst_accuracy"], "kind": "exact"},
        }, context={"scale": scale, "rounds": rounds, "spec": CHURN_SPEC})

    # The campaign actually happened: edges crashed and orphans moved.
    assert counters.get("membership_edge_crashes_total", 0) > 0
    assert counters.get("membership_rehomed_total", 0) > 0
    assert counters.get("membership_handoffs_total", 0) > 0

    # Self-healing holds the worst group: the re-homed arm at least matches
    # the no-failover arm and stays within 15 points of the clean run ...
    clean = data["clean"]["worst_accuracy"]
    assert data["rehome"]["worst_accuracy"] >= \
        data["no_rehome"]["worst_accuracy"], \
        "re-homing lost to no-failover on worst-group accuracy"
    assert data["rehome"]["worst_accuracy"] > clean - 0.15, \
        f"re-homed worst {data['rehome']['worst_accuracy']:.3f} " \
        f"collapsed vs clean {clean:.3f}"

    # ... and its cost is visible: re-homing + handoff traffic and detection
    # timeouts make the self-healing arm strictly more expensive than the
    # no-failover arm on both the comm tracker and the simulated clock.
    assert data["rehome"]["traffic_bytes"] > data["no_rehome"]["traffic_bytes"]
    assert data["rehome"]["sim_time_s"] > data["no_rehome"]["sim_time_s"]

    # Ledger balance on the re-homed arm: joined − left == net Δ population.
    joined = counters.get("membership_joined_total", 0)
    left = counters.get("membership_left_total", 0)
    net = data["rehome"]["final_active"] - data["rehome"]["initial_active"]
    assert joined - left == net, \
        f"membership ledger imbalanced: {joined} - {left} != {net}"
