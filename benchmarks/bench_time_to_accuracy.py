"""Time-to-accuracy bench — sync vs semi-async HierMinimax on a virtual clock.

Trains both variants on the Fig. 3 layout under a heterogeneous device/link
cost model with one persistent 10× straggler client, and compares worst-group
accuracy as a function of *simulated* seconds (the cost-model makespan; the
wall-clock of this bench is irrelevant).  The staleness sweep covers

* ``S=0`` — must reproduce the synchronous trajectory AND makespan exactly
  (the bounded-staleness collect degenerates to the synchronous barrier), and
* ``S>=1`` — overlapping rounds hide the straggler behind the fast cohort.

The headline numbers the bench must reproduce:

* with ``staleness=1`` the semi-async variant reaches the synchronous run's
  final worst-group accuracy in **strictly less** simulated time, and
* the synchronous trajectory itself is bit-unchanged by the cost model (the
  clock is observational) — asserted against a clock-free control run.
"""

from __future__ import annotations

import numpy as np

from repro.core.hierminimax import HierMinimax
from repro.core.semiasync import SemiAsyncHierMinimax
from repro.data.registry import make_federated_dataset
from repro.experiments.runner import monotone_envelope
from repro.nn.models import make_model_factory
from repro.plotting import ascii_plot
from repro.simtime import SimTimer, make_cost_model

#: One persistent 10x straggler (client 0) over mildly lognormal devices.
COST_SPEC = ("hetero,seed=1,device_sigma=0.3,slow_clients=0,slow_factor=10")

STALENESS_SWEEP = (0, 1, 2)


def time_to_accuracy(times, accs, target: float) -> float:
    """First simulated second at which the running-best accuracy >= target."""
    env = monotone_envelope(np.asarray(accs, dtype=np.float64))
    for t, a in zip(times, env):
        if a >= target:
            return float(t)
    return float("inf")


def test_time_to_accuracy(benchmark, repro_scale, save_report,
                          bench_trajectory):
    scale = "tiny" if repro_scale == "tiny" else "small"
    rounds = 400 if scale == "tiny" else 1000
    evals = 20
    dataset = make_federated_dataset("emnist_digits", seed=0, scale=scale)
    factory = make_model_factory("logistic", dataset.input_dim,
                                 dataset.num_classes)

    def train(cls, *, timing=None, **kwargs):
        algo = cls(dataset, factory, batch_size=8, eta_w=0.05, eta_p=2e-3,
                   tau1=2, tau2=2, m_edges=5, seed=0, timing=timing, **kwargs)
        res = algo.run(rounds=rounds, eval_every=max(1, rounds // evals))
        pts = res.history.points
        return {"sim_time_s": [float(p.sim_time_s) for p in pts],
                "worst_accuracy": [float(p.record.worst_accuracy)
                                   for p in pts],
                "final_worst": float(pts[-1].record.worst_accuracy),
                "final_sim_s": float(res.sim_time_s),
                "final_w": res.final_params}

    def run():
        control = train(HierMinimax)  # no clock: the numerics control
        sync = train(HierMinimax, timing=SimTimer(make_cost_model(COST_SPEC)))
        out = {"cost_model": COST_SPEC, "rounds": rounds,
               "sync": {k: v for k, v in sync.items() if k != "final_w"},
               "semi": {}}
        out["numerics_unchanged"] = bool(
            np.array_equal(control["final_w"], sync["final_w"]))
        target = sync["final_worst"]
        for s in STALENESS_SWEEP:
            semi = train(SemiAsyncHierMinimax, staleness=s,
                         timing=SimTimer(make_cost_model(COST_SPEC)))
            out["semi"][str(s)] = {
                **{k: v for k, v in semi.items() if k != "final_w"},
                "exact_sync_reproduction": bool(
                    semi["final_sim_s"] == sync["final_sim_s"]
                    and np.array_equal(semi["final_w"], sync["final_w"])),
                "time_to_sync_final": time_to_accuracy(
                    semi["sim_time_s"], semi["worst_accuracy"], target),
            }
        return out

    data = benchmark.pedantic(run, iterations=1, rounds=1)

    sync = data["sync"]
    series = {"sync": (sync["sim_time_s"], sync["worst_accuracy"])}
    lines = [f"time-to-accuracy ({rounds} rounds, cost model "
             f"{data['cost_model']}):",
             f"  sync: final worst acc {sync['final_worst']:.3f} "
             f"at {sync['final_sim_s']:.2f} sim-s "
             f"(numerics unchanged by the clock: "
             f"{data['numerics_unchanged']})"]
    for s, cell in sorted(data["semi"].items(), key=lambda kv: int(kv[0])):
        series[f"S={s}"] = (cell["sim_time_s"], cell["worst_accuracy"])
        t_cross = cell["time_to_sync_final"]
        lines.append(
            f"  semi-async S={s}: final worst acc {cell['final_worst']:.3f} "
            f"at {cell['final_sim_s']:.2f} sim-s; reaches sync's final worst "
            f"acc at {t_cross:.2f} sim-s"
            + ("  [exact sync reproduction]"
               if cell["exact_sync_reproduction"] else ""))
    lines.append("")
    lines.append(ascii_plot(series, title="worst-group accuracy vs simulated "
                                          "seconds",
                            xlabel="simulated s", ylabel="worst acc"))
    save_report(f"time_to_accuracy_{repro_scale}", data, "\n".join(lines))

    if scale == "tiny":
        # Perf trajectory (tiny scale only): simulated seconds are pure
        # cost-model arithmetic on a fixed seed — machine-independent, so
        # they gate at exact-float tolerance.
        s1 = data["semi"]["1"]
        bench_trajectory("time_to_accuracy", {
            "sync_final_sim_s": {
                "value": sync["final_sim_s"], "kind": "exact"},
            "semiasync_s1_final_sim_s": {
                "value": s1["final_sim_s"], "kind": "exact"},
            "semiasync_s1_time_to_sync_final_s": {
                "value": s1["time_to_sync_final"], "kind": "exact"},
            "sync_final_worst_accuracy": {
                "value": sync["final_worst"], "kind": "exact"},
        }, context={"scale": scale, "rounds": rounds,
                    "cost_model": data["cost_model"]})

    # The virtual clock never changes the synchronous numerics.
    assert data["numerics_unchanged"]
    # S=0 degenerates to the synchronous barrier: exact trajectory + makespan.
    assert data["semi"]["0"]["exact_sync_reproduction"]
    # The acceptance headline: with S=1 the semi-async variant reaches the
    # synchronous run's final worst-group accuracy in strictly less simulated
    # time (and its whole run finishes sooner).
    s1 = data["semi"]["1"]
    assert s1["time_to_sync_final"] < sync["final_sim_s"], \
        f"semi-async never caught up: {s1['time_to_sync_final']} vs " \
        f"{sync['final_sim_s']}"
    assert s1["final_sim_s"] < sync["final_sim_s"]
