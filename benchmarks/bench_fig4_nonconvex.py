"""Figure 4 reproduction bench — non-convex loss (Fashion-MNIST-like MLP).

Regenerates Fig. 4: average and worst test accuracy versus communication rounds
for the five algorithms on the s = 50%-similarity partition with a fully-connected
ReLU network, plus the §6.2 headline (paper, at 50% worst accuracy: −52% vs
Stochastic-AFL, −23% vs DRFA, −41% vs HierFAVG; FedAvg never reaches it).

Reproduction note (see EXPERIMENTS.md): on the synthetic Fashion substitute the
*worst-accuracy* gap between minimax and minimization methods is attenuated —
the overparameterized MLP reaches a per-class capacity plateau where loss
reweighting no longer moves accuracy, unlike the convex settings (Fig. 3,
Table 2) where the paper's fairness gaps reproduce fully.  The robustly
reproduced Fig. 4 claims are (a) the hierarchical methods' communication savings
and (b) HierMinimax's minimax-loss advantage, which this bench also reports via
the worst-edge *test loss* (the quantity problem (3) optimizes).
"""

from __future__ import annotations

from repro.experiments.figures import build_figure, format_figure_report
from repro.experiments.presets import fig4_preset


def test_fig4_nonconvex(benchmark, repro_scale, repro_seeds, save_report):
    preset = fig4_preset(repro_scale)

    def run():
        return build_figure(preset, seeds=repro_seeds)

    fig = benchmark.pedantic(run, iterations=1, rounds=1)

    report_lines = [format_figure_report(fig)]
    payload = {"preset": preset.name, "scale": repro_scale,
               "seeds": list(repro_seeds), "series": {}}
    for name, s in fig.series.items():
        payload["series"][name] = {
            "comm_rounds": s.comm_rounds,
            "average_accuracy": s.average_accuracy,
            "worst_accuracy": s.worst_accuracy,
            "rounds_to_target": s.rounds_to_target,
        }

    # Auxiliary minimax-objective evidence: worst-edge test LOSS at the end.
    worst_losses = {}
    for name, result in fig.output.results.items():
        worst_losses[name] = float(result.history.final().record.per_edge_loss.max())
    payload["final_worst_edge_loss"] = worst_losses
    report_lines.append("final worst-edge test loss (lower is better):")
    for name, value in worst_losses.items():
        report_lines.append(f"  {name:15s} {value:.4f}")
    save_report(f"fig4_{repro_scale}", payload, "\n".join(report_lines))

    series = fig.series
    # All five methods must have actually learned (well above 10% random chance).
    for s in series.values():
        assert s.final_average > 0.3
    # Communication-cost ordering: HierMinimax must beat the single-step two-layer
    # minimax method (Stochastic-AFL pays a cloud cycle per slot; HierMinimax pays
    # one per 2·τ1·τ2 slots).  The DRFA comparison is reported but not asserted:
    # at reduced scale the two methods' worst-accuracy plateaus are statistically
    # tied, making their crossing-time ratio noise (see EXPERIMENTS.md).
    ours = series["hierminimax"].rounds_to_target
    theirs = series["stochastic_afl"].rounds_to_target
    if ours is not None and theirs is not None:
        assert ours <= theirs * 1.05
    # The minimax objective itself: HierMinimax's worst-edge loss beats the
    # minimization methods'.
    assert worst_losses["hierminimax"] <= worst_losses["fedavg"] * 1.10
